// Package ptlgen generates random PTL formulas and random system
// histories. The property tests across the repository use it to validate
// Theorem 1 (incremental == direct semantics), the desugaring rewrites and
// the simplifier; benchmarks use it for synthetic rule sets.
package ptlgen

import (
	"fmt"
	"math/rand"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// Items are the integer database items the generated histories update and
// the generated formulas query via item("...").
var Items = []string{"a", "b", "c"}

// EventNames are the event symbols the generated histories emit: e0 takes
// no parameters, e1 takes one small integer, e2 takes two.
var EventNames = []string{"e0", "e1", "e2"}

// Registry returns a query registry suitable for generated formulas: just
// the built-ins (item, time).
func Registry() *query.Registry { return query.NewRegistry() }

// History generates a random valid transaction-time history with n states
// beyond the initial one. Timestamps advance by 1..3; roughly half the
// states are commits updating 1..2 items, the rest are event-only states;
// every state may carry random events.
func History(rng *rand.Rand, n int) *history.History {
	db := history.EmptyDB()
	for _, it := range Items {
		db = db.With(it, value.NewInt(int64(rng.Intn(10))))
	}
	b := history.NewBuilder(db, 0)
	txn := int64(0)
	for i := 0; i < n; i++ {
		ts := b.Now() + int64(1+rng.Intn(3))
		events := randomEvents(rng)
		if rng.Intn(2) == 0 {
			txn++
			updates := map[string]value.Value{}
			for k := 0; k < 1+rng.Intn(2); k++ {
				updates[Items[rng.Intn(len(Items))]] = value.NewInt(int64(rng.Intn(10)))
			}
			if err := b.Commit(ts, txn, updates, events...); err != nil {
				panic(fmt.Sprintf("ptlgen: commit: %v", err))
			}
		} else {
			if len(events) == 0 {
				events = append(events, event.New("tick"))
			}
			if err := b.Event(ts, events...); err != nil {
				panic(fmt.Sprintf("ptlgen: event: %v", err))
			}
		}
	}
	return b.History()
}

func randomEvents(rng *rand.Rand) []event.Event {
	var out []event.Event
	for _, name := range EventNames {
		if rng.Intn(3) != 0 {
			continue
		}
		switch name {
		case "e0":
			out = append(out, event.New("e0"))
		case "e1":
			out = append(out, event.New("e1", value.NewInt(int64(rng.Intn(3)))))
		case "e2":
			out = append(out, event.New("e2", value.NewInt(int64(rng.Intn(3))), value.NewInt(int64(rng.Intn(3)))))
		}
	}
	return out
}

// Formula generates a random closed formula of the given depth. Closed
// means no free variables: every variable is bound by an assignment. The
// result always passes ptl.Check against Registry().
func Formula(rng *rand.Rand, depth int) ptl.Formula {
	g := &gen{rng: rng}
	return g.formula(depth, nil)
}

// FormulaWithAggregates is Formula but may also nest temporal aggregate
// terms (which are more expensive to generate and check, so they are kept
// out of the default generator).
func FormulaWithAggregates(rng *rand.Rand, depth int) ptl.Formula {
	g := &gen{rng: rng, aggs: true}
	return g.formula(depth, nil)
}

type gen struct {
	rng  *rand.Rand
	aggs bool
	vars int
}

// term generates a term over the bound variables in scope.
func (g *gen) term(scope []string, depth int) ptl.Term {
	switch g.rng.Intn(6) {
	case 0:
		return ptl.CInt(int64(g.rng.Intn(10)))
	case 1:
		return ptl.Q("item", ptl.CStr(Items[g.rng.Intn(len(Items))]))
	case 2:
		return ptl.Time()
	case 3:
		if len(scope) > 0 {
			return ptl.V(scope[g.rng.Intn(len(scope))])
		}
		return ptl.CInt(int64(g.rng.Intn(10)))
	case 4:
		if depth > 0 {
			ops := []value.ArithOp{value.Add, value.Sub, value.Mul}
			return &ptl.Arith{Op: ops[g.rng.Intn(len(ops))], L: g.term(scope, depth-1), R: g.term(scope, depth-1)}
		}
		return ptl.CInt(int64(g.rng.Intn(10)))
	default:
		if g.aggs && depth > 0 && g.rng.Intn(4) == 0 {
			return g.aggregate(depth - 1)
		}
		return ptl.Q("item", ptl.CStr(Items[g.rng.Intn(len(Items))]))
	}
}

func (g *gen) aggregate(depth int) ptl.Term {
	fns := []ptl.AggFn{ptl.AggSum, ptl.AggCount, ptl.AggAvg, ptl.AggMin, ptl.AggMax}
	fn := fns[g.rng.Intn(len(fns))]
	q := ptl.Q("item", ptl.CStr(Items[g.rng.Intn(len(Items))]))
	sample := g.formula(min(depth, 1), nil)
	if g.rng.Intn(2) == 0 {
		return ptl.NewWindowAgg(fn, q, int64(1+g.rng.Intn(20)), sample)
	}
	start := g.formula(min(depth, 1), nil)
	return ptl.NewAgg(fn, q, start, sample)
}

func (g *gen) atom(scope []string) ptl.Formula {
	switch g.rng.Intn(8) {
	case 0:
		return ptl.TTrue
	case 1:
		return ptl.TFalse
	case 2:
		return ptl.Ev("e0")
	case 3:
		return ptl.Ev("e1", ptl.CInt(int64(g.rng.Intn(3))))
	case 4:
		return ptl.Ev("e2", ptl.CInt(int64(g.rng.Intn(3))), ptl.CInt(int64(g.rng.Intn(3))))
	default:
		ops := []value.CmpOp{value.EQ, value.NE, value.LT, value.LE, value.GT, value.GE}
		return ptl.Compare(ops[g.rng.Intn(len(ops))], g.term(scope, 1), g.term(scope, 1))
	}
}

func (g *gen) formula(depth int, scope []string) ptl.Formula {
	if depth <= 0 {
		return g.atom(scope)
	}
	switch g.rng.Intn(10) {
	case 0:
		return &ptl.Not{F: g.formula(depth-1, scope)}
	case 1:
		return &ptl.And{L: g.formula(depth-1, scope), R: g.formula(depth-1, scope)}
	case 2:
		return &ptl.Or{L: g.formula(depth-1, scope), R: g.formula(depth-1, scope)}
	case 3:
		return &ptl.Since{L: g.formula(depth-1, scope), R: g.formula(depth-1, scope), Bound: g.bound()}
	case 4:
		return &ptl.Lasttime{F: g.formula(depth-1, scope)}
	case 5:
		return &ptl.Previously{F: g.formula(depth-1, scope), Bound: g.bound()}
	case 6:
		return &ptl.Throughout{F: g.formula(depth-1, scope), Bound: g.bound()}
	case 7:
		// Assignment binding a variable to an item or the time.
		g.vars++
		name := fmt.Sprintf("x%d", g.vars)
		var q ptl.Term
		if g.rng.Intn(3) == 0 {
			q = ptl.Time()
		} else {
			q = ptl.Q("item", ptl.CStr(Items[g.rng.Intn(len(Items))]))
		}
		inner := append(append([]string{}, scope...), name)
		return ptl.Let(name, q, g.formula(depth-1, inner))
	default:
		return g.atom(scope)
	}
}

func (g *gen) bound() int64 {
	if g.rng.Intn(2) == 0 {
		return ptl.Unbounded
	}
	return int64(1 + g.rng.Intn(10))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
