package ptlgen

import (
	"math/rand"
	"testing"

	"ptlactive/internal/ptl"
)

// TestGeneratedFormulasCheck: every generated formula must pass the
// checker against the generator's registry (closed, safe, known queries).
func TestGeneratedFormulasCheck(t *testing.T) {
	reg := Registry()
	for seed := 0; seed < 300; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		f := Formula(rng, 1+rng.Intn(5))
		if fv := ptl.FreeVars(f); len(fv) != 0 {
			t.Fatalf("seed %d: generated formula has free vars %v: %s", seed, fv, f)
		}
		if _, err := ptl.Check(f, reg); err != nil {
			t.Fatalf("seed %d: Check failed: %v\n%s", seed, err, f)
		}
	}
	for seed := 0; seed < 150; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		f := FormulaWithAggregates(rng, 1+rng.Intn(4))
		if _, err := ptl.Check(f, reg); err != nil {
			t.Fatalf("agg seed %d: Check failed: %v\n%s", seed, err, f)
		}
	}
}

// TestGeneratedFormulasRoundTrip: the printer/parser round trip holds for
// generated formulas (they exercise the aggregate syntax too).
func TestGeneratedFormulasRoundTrip(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(500 + seed)))
		f := FormulaWithAggregates(rng, 1+rng.Intn(4))
		back, err := ptl.Parse(f.String())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, f)
		}
		if !ptl.Equal(f, back) {
			t.Fatalf("seed %d: round trip changed\n  a: %s\n  b: %s", seed, f, back)
		}
	}
}

// TestGeneratedHistoriesValid: histories respect the model invariants (the
// builder enforces them; this asserts the generator never trips them and
// produces the advertised mix).
func TestGeneratedHistoriesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := History(rng, 200)
	if h.Len() != 201 {
		t.Fatalf("Len = %d", h.Len())
	}
	commits := len(h.CommitPoints())
	if commits == 0 || commits == 200 {
		t.Fatalf("commit mix degenerate: %d", commits)
	}
	for _, name := range Items {
		if _, ok := h.At(0).DB.Get(name); !ok {
			t.Fatalf("item %s missing from initial state", name)
		}
	}
	// Determinism.
	h2 := History(rand.New(rand.NewSource(9)), 200)
	for i := 0; i < h.Len(); i++ {
		if h.At(i).TS != h2.At(i).TS || !h.At(i).DB.Equal(h2.At(i).DB) {
			t.Fatal("history generation not deterministic")
		}
	}
}
