// Package ee implements the event-expression formalism the paper compares
// against (Section 10; Gehani, Jagadish & Shmueli): regular expressions
// over the event alphabet, including negation, processed by compiling to a
// finite automaton. Because event expressions use all regular operators
// plus negation, "the size of the automaton can be super-exponential in
// the length of the event-expression" [Stockmeyer 74]: every negation
// forces a subset-construction determinization before complementing. The
// E7 benchmark measures that blowup against the PTL evaluator's state
// size on equivalent conditions.
package ee

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// Expr is an event expression over an event alphabet.
type Expr interface {
	isExpr()
	String() string
}

// Sym matches one occurrence of a named event.
type Sym struct{ Name string }

// Epsilon matches the empty sequence.
type Epsilon struct{}

// Any matches any single event of the alphabet.
type Any struct{}

// Concat matches L followed by R.
type Concat struct{ L, R Expr }

// Alt matches L or R.
type Alt struct{ L, R Expr }

// Star matches zero or more repetitions of X.
type Star struct{ X Expr }

// Not matches exactly the sequences X does not match (complement relative
// to the alphabet). This is the operator that forces determinization.
type Not struct{ X Expr }

func (*Sym) isExpr()     {}
func (*Epsilon) isExpr() {}
func (*Any) isExpr()     {}
func (*Concat) isExpr()  {}
func (*Alt) isExpr()     {}
func (*Star) isExpr()    {}
func (*Not) isExpr()     {}

func (e *Sym) String() string     { return e.Name }
func (e *Epsilon) String() string { return "()" }
func (e *Any) String() string     { return "." }
func (e *Concat) String() string  { return "(" + e.L.String() + " ; " + e.R.String() + ")" }
func (e *Alt) String() string     { return "(" + e.L.String() + " | " + e.R.String() + ")" }
func (e *Star) String() string    { return e.X.String() + "*" }
func (e *Not) String() string     { return "!(" + e.X.String() + ")" }

// Seq builds a concatenation chain.
func Seq(es ...Expr) Expr {
	if len(es) == 0 {
		return &Epsilon{}
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &Concat{L: out, R: e}
	}
	return out
}

// Parse parses the concrete syntax:
//
//	expr   := alt
//	alt    := concat { "|" concat }
//	concat := postfix { ";" postfix }
//	postfix:= primary { "*" }
//	primary:= NAME | "." | "(" expr ")" | "()" | "!" primary
func Parse(src string) (Expr, error) {
	p := &eparser{src: src}
	p.skip()
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.i < len(p.src) {
		return nil, fmt.Errorf("ee: offset %d: trailing input", p.i)
	}
	return e, nil
}

type eparser struct {
	src string
	i   int
}

func (p *eparser) skip() {
	for p.i < len(p.src) && (p.src[p.i] == ' ' || p.src[p.i] == '\t' || p.src[p.i] == '\n') {
		p.i++
	}
}

func (p *eparser) peek() byte {
	if p.i < len(p.src) {
		return p.src[p.i]
	}
	return 0
}

func (p *eparser) alt() (Expr, error) {
	l, err := p.concat()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.peek() != '|' {
			return l, nil
		}
		p.i++
		r, err := p.concat()
		if err != nil {
			return nil, err
		}
		l = &Alt{L: l, R: r}
	}
}

func (p *eparser) concat() (Expr, error) {
	l, err := p.postfix()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.peek() != ';' {
			return l, nil
		}
		p.i++
		r, err := p.postfix()
		if err != nil {
			return nil, err
		}
		l = &Concat{L: l, R: r}
	}
}

func (p *eparser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.peek() != '*' {
			return e, nil
		}
		p.i++
		e = &Star{X: e}
	}
}

func (p *eparser) primary() (Expr, error) {
	p.skip()
	switch c := p.peek(); {
	case c == '.':
		p.i++
		return &Any{}, nil
	case c == '!':
		p.i++
		inner, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &Not{X: inner}, nil
	case c == '(':
		p.i++
		p.skip()
		if p.peek() == ')' {
			p.i++
			return &Epsilon{}, nil
		}
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, fmt.Errorf("ee: offset %d: expected ')'", p.i)
		}
		p.i++
		return e, nil
	case c == '_' || unicode.IsLetter(rune(c)):
		start := p.i
		for p.i < len(p.src) {
			r := rune(p.src[p.i])
			if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
				p.i++
				continue
			}
			break
		}
		return &Sym{Name: p.src[start:p.i]}, nil
	default:
		return nil, fmt.Errorf("ee: offset %d: unexpected %q", p.i, string(c))
	}
}

// Symbols returns the sorted event symbols mentioned by the expression.
func Symbols(e Expr) []string {
	seen := map[string]struct{}{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Sym:
			seen[x.Name] = struct{}{}
		case *Concat:
			walk(x.L)
			walk(x.R)
		case *Alt:
			walk(x.L)
			walk(x.R)
		case *Star:
			walk(x.X)
		case *Not:
			walk(x.X)
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Alphabet is the finite event alphabet an automaton runs over.
type Alphabet struct {
	names []string
	index map[string]int
}

// NewAlphabet builds an alphabet from symbol names (deduplicated, sorted).
func NewAlphabet(names ...string) *Alphabet {
	seen := map[string]struct{}{}
	var out []string
	for _, n := range names {
		if _, dup := seen[n]; !dup && n != "" {
			seen[n] = struct{}{}
			out = append(out, n)
		}
	}
	sort.Strings(out)
	a := &Alphabet{names: out, index: make(map[string]int, len(out))}
	for i, n := range out {
		a.index[n] = i
	}
	return a
}

// Size returns the number of symbols.
func (a *Alphabet) Size() int { return len(a.names) }

// Names returns the symbols in order.
func (a *Alphabet) Names() []string { return a.names }

// Index returns a symbol's index, or -1.
func (a *Alphabet) Index(name string) int {
	if i, ok := a.index[name]; ok {
		return i
	}
	return -1
}

// String renders the alphabet.
func (a *Alphabet) String() string { return "{" + strings.Join(a.names, ",") + "}" }

// GapSequence recognizes expressions of the shape
// .* ; a1 ; .* ; a2 ; ... ; ak ; .* — "the events a1..ak occurred in that
// order, arbitrarily interleaved" — and returns the symbol sequence. These
// are the patterns Section 10 discusses ("three events A, B, C occur in
// that order"); ToPTL translates them into past formulas.
func GapSequence(e Expr) ([]string, bool) {
	var syms []string
	isAnyStar := func(e Expr) bool {
		s, ok := e.(*Star)
		if !ok {
			return false
		}
		_, any := s.X.(*Any)
		return any
	}
	// The concat tree is left-leaning by construction; flatten it.
	var parts []Expr
	var flatten func(Expr)
	flatten = func(e Expr) {
		if c, ok := e.(*Concat); ok {
			flatten(c.L)
			flatten(c.R)
			return
		}
		parts = append(parts, e)
	}
	flatten(e)
	// Expect: .* (sym .*)+ with the trailing .* present.
	if len(parts) < 3 || !isAnyStar(parts[0]) || !isAnyStar(parts[len(parts)-1]) {
		return nil, false
	}
	i := 1
	for i < len(parts)-1 {
		s, ok := parts[i].(*Sym)
		if !ok {
			return nil, false
		}
		syms = append(syms, s.Name)
		i++
		if i < len(parts)-1 {
			if !isAnyStar(parts[i]) {
				return nil, false
			}
			i++
		}
	}
	if len(syms) == 0 {
		return nil, false
	}
	return syms, true
}
