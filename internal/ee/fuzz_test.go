package ee

import "testing"

// FuzzEEParse: the event-expression parser never panics; parses
// round-trip.
func FuzzEEParse(f *testing.F) {
	for _, s := range []string{`a ; b`, `(a | b)* ; !(c)`, `.* ; a ; .*`, `()`, `!!a`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", e, err)
		}
		if e.String() != back.String() {
			t.Fatalf("round trip changed %q -> %q", e, back)
		}
	})
}
