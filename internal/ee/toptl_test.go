package ee

import (
	"math/rand"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/query"
)

func TestGapSequence(t *testing.T) {
	good := map[string][]string{
		`.* ; a ; .*`:             {"a"},
		`.* ; a ; .* ; b ; .*`:    {"a", "b"},
		`.*; x ;.*; y ;.*; z ;.*`: {"x", "y", "z"},
	}
	for src, want := range good {
		e := mustParse(t, src)
		got, ok := GapSequence(e)
		if !ok || len(got) != len(want) {
			t.Fatalf("GapSequence(%q) = %v, %t", src, got, ok)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GapSequence(%q) = %v", src, got)
			}
		}
	}
	bad := []string{
		`a`, `a ; b`, `.* ; a`, `a ; .*`, `.* ; a ; b ; .*`,
		`.* ; (a|b) ; .*`, `.*`, `.* ; .*`, `!(a) ; .*`,
	}
	for _, src := range bad {
		if _, ok := GapSequence(mustParse(t, src)); ok {
			t.Errorf("GapSequence(%q) should be rejected", src)
		}
	}
}

// TestToPTLDifferential: the DFA's prefix acceptance equals the naive
// satisfaction of the translated past formula at every state, on random
// traces — the Section-10 claim that PTL covers the ordered-occurrence
// patterns of event expressions.
func TestToPTLDifferential(t *testing.T) {
	alpha := NewAlphabet("a", "b", "c", "r")
	exprs := []string{
		`.* ; a ; .*`,
		`.* ; a ; .* ; b ; .*`,
		`.* ; a ; .* ; b ; .* ; c ; .*`,
		`.* ; b ; .* ; a ; .*`,
	}
	reg := query.NewRegistry()
	rng := rand.New(rand.NewSource(31))
	for _, src := range exprs {
		e := mustParse(t, src)
		f, err := ToPTL(e)
		if err != nil {
			t.Fatalf("ToPTL(%q): %v", src, err)
		}
		d, err := Compile(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			n := 1 + rng.Intn(12)
			names := alpha.Names()
			b := history.NewBuilder(history.EmptyDB(), 0)
			m := NewMatcher(d)
			var accepts []bool
			for i := 0; i < n; i++ {
				sym := names[rng.Intn(len(names))]
				if err := b.Event(int64(i+1), event.New(sym)); err != nil {
					t.Fatal(err)
				}
				m.Step(sym)
				accepts = append(accepts, m.Accepting())
			}
			h := b.History()
			nv := naive.New(reg, h, nil)
			// State 0 is the (eventless) initial state; the trace's i-th
			// event is at state i+1.
			for i := 0; i < n; i++ {
				want := accepts[i]
				got, err := nv.Sat(i+1, f, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%q trial %d prefix %d: PTL=%t DFA=%t\nformula: %s",
						src, trial, i+1, got, want, f)
				}
			}
		}
	}
}

func TestToPTLRejects(t *testing.T) {
	if _, err := ToPTL(mustParse(t, `a ; b`)); err == nil {
		t.Error("non-gap expression should be rejected")
	}
}
