package ee

import (
	"fmt"
	"sort"
	"strings"
)

// NFA is a nondeterministic finite automaton over an alphabet, with
// epsilon transitions. State 0 is the start state.
type NFA struct {
	alpha *Alphabet
	// eps[s] lists epsilon successors; trans[s][sym] lists successors.
	eps    [][]int
	trans  []map[int][]int
	accept map[int]bool
}

// newNFA allocates an NFA with n states.
func newNFA(alpha *Alphabet, n int) *NFA {
	nfa := &NFA{alpha: alpha, eps: make([][]int, n), trans: make([]map[int][]int, n), accept: map[int]bool{}}
	for i := range nfa.trans {
		nfa.trans[i] = map[int][]int{}
	}
	return nfa
}

// States returns the number of states.
func (n *NFA) States() int { return len(n.eps) }

// addState appends a fresh state and returns its id.
func (n *NFA) addState() int {
	n.eps = append(n.eps, nil)
	n.trans = append(n.trans, map[int][]int{})
	return len(n.eps) - 1
}

// CompileNFA builds an NFA for the expression over the given alphabet via
// Thompson's construction. Negation subterms are determinized and
// complemented (this is where the blowup originates), then re-embedded as
// sub-NFAs. Every symbol of the expression must be in the alphabet.
func CompileNFA(e Expr, alpha *Alphabet) (*NFA, error) {
	for _, s := range Symbols(e) {
		if alpha.Index(s) < 0 {
			return nil, fmt.Errorf("ee: symbol %q not in alphabet %s", s, alpha)
		}
	}
	n := newNFA(alpha, 1) // state 0 = start
	start, end, err := n.build(e)
	if err != nil {
		return nil, err
	}
	n.eps[0] = append(n.eps[0], start)
	n.accept[end] = true
	return n, nil
}

// build constructs the fragment for e and returns its (start, end) states.
func (n *NFA) build(e Expr) (int, int, error) {
	switch x := e.(type) {
	case *Epsilon:
		s := n.addState()
		t := n.addState()
		n.eps[s] = append(n.eps[s], t)
		return s, t, nil
	case *Sym:
		s := n.addState()
		t := n.addState()
		i := n.alpha.Index(x.Name)
		n.trans[s][i] = append(n.trans[s][i], t)
		return s, t, nil
	case *Any:
		s := n.addState()
		t := n.addState()
		for i := 0; i < n.alpha.Size(); i++ {
			n.trans[s][i] = append(n.trans[s][i], t)
		}
		return s, t, nil
	case *Concat:
		ls, le, err := n.build(x.L)
		if err != nil {
			return 0, 0, err
		}
		rs, re, err := n.build(x.R)
		if err != nil {
			return 0, 0, err
		}
		n.eps[le] = append(n.eps[le], rs)
		return ls, re, nil
	case *Alt:
		s := n.addState()
		t := n.addState()
		ls, le, err := n.build(x.L)
		if err != nil {
			return 0, 0, err
		}
		rs, re, err := n.build(x.R)
		if err != nil {
			return 0, 0, err
		}
		n.eps[s] = append(n.eps[s], ls, rs)
		n.eps[le] = append(n.eps[le], t)
		n.eps[re] = append(n.eps[re], t)
		return s, t, nil
	case *Star:
		s := n.addState()
		t := n.addState()
		is, ie, err := n.build(x.X)
		if err != nil {
			return 0, 0, err
		}
		n.eps[s] = append(n.eps[s], is, t)
		n.eps[ie] = append(n.eps[ie], is, t)
		return s, t, nil
	case *Not:
		// Compile the subexpression, determinize, complement, re-embed.
		sub, err := CompileNFA(x.X, n.alpha)
		if err != nil {
			return 0, 0, err
		}
		dfa := sub.Determinize()
		comp := dfa.Complement()
		return n.embedDFA(comp)
	default:
		return 0, 0, fmt.Errorf("ee: unknown expression %T", e)
	}
}

// embedDFA copies a DFA into this NFA as a fragment with a single accept
// end state (epsilon edges from every accepting DFA state).
func (n *NFA) embedDFA(d *DFA) (int, int, error) {
	base := make([]int, d.States())
	for i := range base {
		base[i] = n.addState()
	}
	end := n.addState()
	for s := 0; s < d.States(); s++ {
		for sym, t := range d.trans[s] {
			if t >= 0 {
				n.trans[base[s]][sym] = append(n.trans[base[s]][sym], base[t])
			}
		}
		if d.accept[s] {
			n.eps[base[s]] = append(n.eps[base[s]], end)
		}
	}
	return base[d.start], end, nil
}

// closure expands a state set by epsilon transitions.
func (n *NFA) closure(set map[int]bool) {
	var stack []int
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
}

// Determinize performs the subset construction.
func (n *NFA) Determinize() *DFA {
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		var sb strings.Builder
		for _, id := range ids {
			fmt.Fprintf(&sb, "%d,", id)
		}
		return sb.String()
	}
	d := &DFA{alpha: n.alpha}
	start := map[int]bool{0: true}
	n.closure(start)
	index := map[string]int{}
	var sets []map[int]bool
	addSet := func(set map[int]bool) int {
		k := key(set)
		if i, ok := index[k]; ok {
			return i
		}
		i := len(sets)
		index[k] = i
		sets = append(sets, set)
		d.trans = append(d.trans, make([]int, n.alpha.Size()))
		acc := false
		for s := range set {
			if n.accept[s] {
				acc = true
				break
			}
		}
		d.accept = append(d.accept, acc)
		return i
	}
	d.start = addSet(start)
	for i := 0; i < len(sets); i++ {
		for sym := 0; sym < n.alpha.Size(); sym++ {
			next := map[int]bool{}
			for s := range sets[i] {
				for _, t := range n.trans[s][sym] {
					next[t] = true
				}
			}
			n.closure(next)
			d.trans[i][sym] = addSet(next)
		}
	}
	return d
}

// DFA is a complete deterministic automaton (every state has a transition
// for every symbol; the subset construction's empty set is the sink).
type DFA struct {
	alpha  *Alphabet
	start  int
	trans  [][]int
	accept []bool
}

// States returns the number of states.
func (d *DFA) States() int { return len(d.trans) }

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// Accepting reports whether a state accepts.
func (d *DFA) Accepting(state int) bool { return d.accept[state] }

// Step advances from a state on an event symbol; unknown symbols return
// -1.
func (d *DFA) Step(state int, symbol string) int {
	i := d.alpha.Index(symbol)
	if i < 0 {
		return -1
	}
	return d.trans[state][i]
}

// Complement flips acceptance (the DFA is complete, so this recognizes
// exactly the complement language).
func (d *DFA) Complement() *DFA {
	out := &DFA{alpha: d.alpha, start: d.start, trans: d.trans, accept: make([]bool, len(d.accept))}
	for i, a := range d.accept {
		out.accept[i] = !a
	}
	return out
}

// Minimize returns an equivalent minimal DFA (Hopcroft-style partition
// refinement, simple quadratic implementation). The E7 benchmark reports
// both raw and minimized sizes, since even the minimal automata blow up.
func (d *DFA) Minimize() *DFA {
	n := d.States()
	if n == 0 {
		return d
	}
	// Initial partition: accepting vs non-accepting.
	part := make([]int, n)
	for i, a := range d.accept {
		if a {
			part[i] = 1
		}
	}
	numParts := 2
	for {
		// Signature of a state: its partition plus the partitions of its
		// successors.
		sig := make([]string, n)
		for s := 0; s < n; s++ {
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d:", part[s])
			for _, t := range d.trans[s] {
				fmt.Fprintf(&sb, "%d,", part[t])
			}
			sig[s] = sb.String()
		}
		index := map[string]int{}
		next := make([]int, n)
		count := 0
		for s := 0; s < n; s++ {
			if i, ok := index[sig[s]]; ok {
				next[s] = i
			} else {
				index[sig[s]] = count
				next[s] = count
				count++
			}
		}
		if count == numParts {
			break
		}
		part = next
		numParts = count
	}
	out := &DFA{alpha: d.alpha, start: part[d.start],
		trans: make([][]int, numParts), accept: make([]bool, numParts)}
	for s := 0; s < n; s++ {
		p := part[s]
		if out.trans[p] == nil {
			out.trans[p] = make([]int, d.alpha.Size())
			for sym, t := range d.trans[s] {
				out.trans[p][sym] = part[t]
			}
			out.accept[p] = d.accept[s]
		}
	}
	return out
}

// Matcher runs a DFA over an event stream.
type Matcher struct {
	dfa   *DFA
	state int
	dead  bool
}

// NewMatcher starts a matcher at the DFA's start state.
func NewMatcher(d *DFA) *Matcher { return &Matcher{dfa: d, state: d.start} }

// Step consumes one event occurrence.
func (m *Matcher) Step(symbol string) {
	if m.dead {
		return
	}
	next := m.dfa.Step(m.state, symbol)
	if next < 0 {
		m.dead = true
		return
	}
	m.state = next
}

// Accepting reports whether the consumed prefix is in the language.
func (m *Matcher) Accepting() bool { return !m.dead && m.dfa.Accepting(m.state) }

// Reset returns the matcher to the start state.
func (m *Matcher) Reset() { m.state = m.dfa.start; m.dead = false }

// Compile is the one-call pipeline: parse-free compilation of an
// expression to a (non-minimized) DFA over the given alphabet.
func Compile(e Expr, alpha *Alphabet) (*DFA, error) {
	nfa, err := CompileNFA(e, alpha)
	if err != nil {
		return nil, err
	}
	return nfa.Determinize(), nil
}
