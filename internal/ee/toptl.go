package ee

import (
	"fmt"

	"ptlactive/internal/ptl"
)

// ToPTL translates a gap-ordered event expression (GapSequence shape) into
// an equivalent PTL past formula:
//
//	.* ; a ; .* ; b ; .* ; c ; .*
//	    ==>  previously (@c and previously (@b and previously @a))
//
// The translation witnesses Section 10's comparison: the same ordered-
// occurrence conditions event expressions state algebraically, PTL states
// logically — and the PTL evaluator processes them without automaton
// construction. Expressions outside the gap-ordered subset return an
// error: full regular expressions exceed PTL (first-order) expressiveness
// [McNaughton-Papert], which is the price event expressions pay in
// automaton size.
func ToPTL(e Expr) (ptl.Formula, error) {
	syms, ok := GapSequence(e)
	if !ok {
		return nil, fmt.Errorf("ee: %s is not a gap-ordered sequence; no PTL translation implemented", e)
	}
	// Build inside-out: previously(@a_k and previously(... @a_1))
	var f ptl.Formula
	for i, s := range syms {
		atom := ptl.Ev(s)
		if i == 0 {
			f = &ptl.Previously{F: atom, Bound: ptl.Unbounded}
			continue
		}
		f = &ptl.Previously{F: &ptl.And{L: atom, R: f}, Bound: ptl.Unbounded}
	}
	// The innermost previously wraps a1 alone; reorder: we built
	// previously(@ak and previously(@a_{k-1} and ... previously(@a1))).
	return f, nil
}
