package ee

import (
	"math/rand"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func TestParseAndPrint(t *testing.T) {
	cases := map[string]string{
		`a`:           "a",
		`a ; b`:       "(a ; b)",
		`a | b ; c`:   "(a | (b ; c))",
		`(a | b) ; c`: "((a | b) ; c)",
		`a*`:          "a*",
		`a**`:         "a**",
		`.`:           ".",
		`!(a ; b)`:    "!((a ; b))",
		`()`:          "()",
		`.* ; a ; .*`: "((.* ; a) ; .*)",
		`!a`:          "!(a)",
	}
	for src, want := range cases {
		if got := mustParse(t, src).String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", src, got, want)
		}
	}
	for _, bad := range []string{"", "a |", "(a", "a)", ";", "a ; *", "!"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestSymbolsAndAlphabet(t *testing.T) {
	e := mustParse(t, `b ; a | !(c)`)
	syms := Symbols(e)
	if strings.Join(syms, ",") != "a,b,c" {
		t.Errorf("Symbols = %v", syms)
	}
	a := NewAlphabet("b", "a", "b", "")
	if a.Size() != 2 || a.Index("a") != 0 || a.Index("b") != 1 || a.Index("z") != -1 {
		t.Errorf("alphabet wrong: %s", a)
	}
	if a.String() != "{a,b}" {
		t.Errorf("String = %s", a)
	}
}

func run(t *testing.T, d *DFA, trace string) bool {
	t.Helper()
	m := NewMatcher(d)
	for _, c := range trace {
		m.Step(string(c))
	}
	return m.Accepting()
}

func TestBasicLanguages(t *testing.T) {
	alpha := NewAlphabet("a", "b", "c")
	type tc struct {
		expr   string
		accept []string
		reject []string
	}
	cases := []tc{
		{`a`, []string{"a"}, []string{"", "b", "aa"}},
		{`a ; b`, []string{"ab"}, []string{"a", "ba", "abb"}},
		{`a | b`, []string{"a", "b"}, []string{"", "c", "ab"}},
		{`a*`, []string{"", "a", "aaa"}, []string{"b", "ab"}},
		{`()`, []string{""}, []string{"a"}},
		{`.`, []string{"a", "b", "c"}, []string{"", "ab"}},
		{`.* ; a ; .* ; b ; .*`, []string{"ab", "cacb", "aab"}, []string{"", "ba", "b"}},
		{`!(a)`, []string{"", "b", "ab", "aa"}, []string{"a"}},
		{`!(.* ; a ; .*)`, []string{"", "b", "bc"}, []string{"a", "ba", "cab"}},
		{`!(()) ; a`, []string{"ba", "aa", "cba"}, []string{"a", ""}},
	}
	for _, c := range cases {
		d, err := Compile(mustParse(t, c.expr), alpha)
		if err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		for _, s := range c.accept {
			if !run(t, d, s) {
				t.Errorf("%q should accept %q", c.expr, s)
			}
		}
		for _, s := range c.reject {
			if run(t, d, s) {
				t.Errorf("%q should reject %q", c.expr, s)
			}
		}
	}
}

func TestCompileUnknownSymbol(t *testing.T) {
	if _, err := Compile(mustParse(t, `z`), NewAlphabet("a")); err == nil {
		t.Error("unknown symbol should fail")
	}
}

func TestMatcherLifecycle(t *testing.T) {
	alpha := NewAlphabet("a")
	d, _ := Compile(mustParse(t, `a`), alpha)
	m := NewMatcher(d)
	m.Step("zzz") // unknown symbol kills the matcher
	if m.Accepting() {
		t.Error("dead matcher should not accept")
	}
	m.Step("a")
	if m.Accepting() {
		t.Error("dead matcher stays dead")
	}
	m.Reset()
	m.Step("a")
	if !m.Accepting() {
		t.Error("reset matcher should accept")
	}
}

// TestNFADFAEquivalence: the NFA (simulated via determinization on the
// fly... here simply by the subset construction) and the DFA accept the
// same random traces; the minimized DFA agrees too.
func TestNFADFAEquivalence(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	exprs := []string{
		`a ; b`, `(a | b)* ; a`, `!(a* ; b)`, `.* ; a ; b ; .*`,
		`!(!(a) ; b) | a*`, `(a ; a | b)*`,
	}
	rng := rand.New(rand.NewSource(5))
	for _, src := range exprs {
		e := mustParse(t, src)
		nfa, err := CompileNFA(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		d := nfa.Determinize()
		md := d.Minimize()
		if md.States() > d.States() {
			t.Errorf("%q: minimized DFA larger (%d > %d)", src, md.States(), d.States())
		}
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(8)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte("ab"[rng.Intn(2)])
			}
			trace := sb.String()
			if got, want := run(t, md, trace), run(t, d, trace); got != want {
				t.Fatalf("%q: minimized DFA disagrees on %q: %t vs %t", src, trace, got, want)
			}
		}
	}
}

// TestNegationBlowup verifies the Section-10 claim: nesting negation
// grows the automaton dramatically, while each un-negated expression stays
// small.
func TestNegationBlowup(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	// L_k = .* ; a ; .^(k-1) — "the k-th event from the end is a". Its
	// minimal DFA needs 2^k states; the negated expression (the form event
	// expressions use for "a must NOT have occurred k steps ago") needs
	// the same, and the determinization at the negation boundary realizes
	// the exponential cost at compile time.
	build := func(k int) Expr {
		parts := []Expr{&Star{X: &Any{}}, &Sym{Name: "a"}}
		for i := 0; i < k-1; i++ {
			parts = append(parts, &Any{})
		}
		return &Not{X: Seq(parts...)}
	}
	var sizes []int
	for k := 1; k <= 6; k++ {
		nfa, err := CompileNFA(build(k), alpha)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, nfa.Determinize().Minimize().States())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < 2*sizes[i-1]-2 {
			t.Errorf("automaton did not roughly double at k=%d: %v", i+1, sizes)
		}
	}
	if sizes[len(sizes)-1] < 1<<6 {
		t.Errorf("expected >= 64 states at k=6, got %v", sizes)
	}
}

// TestOrderedEventsFamily compiles the E7 family: "events e1..ek occur in
// that order" with interleaving allowed, plus its negation-strengthened
// variant ("...and no reset event between them").
func TestOrderedEventsFamily(t *testing.T) {
	names := []string{"e1", "e2", "e3", "r"}
	alpha := NewAlphabet(names...)
	// .* ; e1 ; .* ; e2 ; .* ; e3 ; .*
	ordered := Seq(&Star{X: &Any{}}, &Sym{Name: "e1"}, &Star{X: &Any{}},
		&Sym{Name: "e2"}, &Star{X: &Any{}}, &Sym{Name: "e3"}, &Star{X: &Any{}})
	d, err := Compile(ordered, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !run(t, d, "") == false { // trivially: empty not accepted
		t.Error("empty trace should be rejected")
	}
	accepts := []string{"e1e2e3"}
	_ = accepts
	m := NewMatcher(d)
	for _, sym := range []string{"e1", "r", "e2", "e3"} {
		m.Step(sym)
	}
	if !m.Accepting() {
		t.Error("interleaved ordered occurrence should be accepted")
	}
	m.Reset()
	for _, sym := range []string{"e2", "e1", "e3"} {
		m.Step(sym)
	}
	if m.Accepting() {
		t.Error("e2 before e1 with no later e2... wait e2 occurs before e1 but also: trace e2,e1,e3 has no e1<e2<e3 subsequence")
	}
}
