package wire

import (
	"bytes"
	"encoding/json"
	"net"
	"reflect"
	"testing"
)

// sampleMsgs covers every frame type and every Msg field somewhere, plus
// degenerate shapes (empty msg, unknown type, zero-valued fields).
func sampleMsgs() []*Msg {
	raw := func(s string) json.RawMessage { return json.RawMessage(s) }
	return []*Msg{
		Hello(),
		{T: TypeHello, ID: 1, Proto: ProtoName, Version: Version,
			Codecs: []string{CodecNameBinary, CodecNameJSON}},
		{T: TypeHello, ID: 1, Proto: ProtoName, Version: Version, Codec: CodecNameBinary},
		{T: TypePing, ID: 7},
		{T: TypeTxn, ID: 2, TS: 5,
			Updates: map[string]json.RawMessage{"a": raw(`{"int":3}`), "b": raw(`{"str":"x"}`)},
			Deletes: []string{"c", "d"},
			Events:  [][]json.RawMessage{{raw(`"login"`), raw(`{"str":"u1"}`)}, {raw(`"tick"`)}}},
		{T: TypeEmit, ID: 3, TS: 0, Events: [][]json.RawMessage{{raw(`"e"`)}}},
		{T: TypeRule, ID: 4, Name: "hot", Cond: `item("a") > 5`, Constraint: true, Sched: 2},
		{T: TypeRevive, ID: 5, Name: "hot"},
		{T: TypeQuery, ID: 6, What: "firings", From: 12},
		{T: TypeQuery, ID: 6, What: "db", From: 0},
		{T: TypeSubscribe, ID: 8, From: 0},
		{T: TypeOK, ID: 9, TS: 42, From: 3},
		{T: TypeOK, ID: 10, Items: map[string]json.RawMessage{"a": raw(`{"float":2.5}`)}},
		{T: TypeOK, ID: 11, Firings: []FiringJSON{
			{Rule: "hot", Time: 3, State: 1, Seq: 0},
			{Rule: "crossed", Time: 4, State: 0, Seq: 1,
				Binding: map[string]json.RawMessage{"x": raw(`{"int":9}`)}},
		}},
		{T: TypeOK, ID: 12, Rules: []RuleJSON{
			{Name: "r1", Condition: "c1", Constraint: true, Scheduling: 1,
				Parameters: []string{"x", "y"}, Pending: 2},
			{Name: "r2", Condition: "c2"},
		}},
		{T: TypeOK, ID: 13, Health: []HealthJSON{
			{Rule: "r1", Quarantined: true, Consecutive: 3, Total: 9,
				LastError: "boom", LastAt: 77},
			{Rule: "r2"},
		}, Degraded: "wal: sealed"},
		{T: TypeError, ID: 14, Code: CodeConstraint, Err: "constraint monotone violated",
			Name: "monotone", Txn: 0, TS: 0},
		{T: TypeError, ID: 15, Code: CodeDegraded, Err: "degraded"},
		{T: TypeFiring, Firing: &FiringJSON{Rule: "hot", Time: 2, State: 0, Seq: 5}},
		{T: TypeFiring, Firings: []FiringJSON{
			{Rule: "hot", Time: 2, Seq: 5}, {Rule: "hot", Time: 3, Seq: 6}}},
		{T: TypeGap, Missed: 17},
		{T: TypeGap, Missed: 0},
		{T: TypeBye},
		{T: "future-frame-type", ID: 99}, // unknown type survives via the escape code
	}
}

// roundTrip pushes m through one codec's write+read path.
func roundTrip(t *testing.T, m *Msg, c Codec) *Msg {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrameC(&buf, m, c); err != nil {
		t.Fatalf("%s encode %+v: %v", c, m, err)
	}
	back, err := ReadFrameC(&buf, c)
	if err != nil {
		t.Fatalf("%s decode %+v: %v", c, m, err)
	}
	return back
}

// canonJSON is the comparison key for cross-codec equivalence: encoding
// a Msg as JSON normalizes the representational slack the codecs are
// allowed to differ in (nil vs empty maps, map iteration order).
func canonJSON(t *testing.T, m *Msg) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal %+v: %v", m, err)
	}
	return string(b)
}

// TestCrossCodecRoundTrip is the cross-codec property test: every Msg
// round-trips JSON -> binary -> JSON identically.
func TestCrossCodecRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		// Canonicalize through the JSON codec first: the starting point is
		// what a JSON peer would have decoded.
		viaJSON := roundTrip(t, m, CodecJSON)
		viaBinary := roundTrip(t, viaJSON, CodecBinary)
		if got, want := canonJSON(t, viaBinary), canonJSON(t, viaJSON); got != want {
			t.Errorf("msg %q drifted across codecs:\n json:   %s\n binary: %s", m.T, want, got)
		}
		// And the binary codec is a fixpoint of its own round trip.
		again := roundTrip(t, viaBinary, CodecBinary)
		if !reflect.DeepEqual(again, viaBinary) {
			t.Errorf("msg %q binary round trip not stable:\n%+v\n%+v", m.T, viaBinary, again)
		}
	}
}

// TestZeroValueFields is the zero-value audit: a Msg whose
// semantically-load-bearing fields sit at zero must cross both codecs
// without the zero being confused with absence — in particular TS, Txn,
// From and Missed must appear explicitly in the JSON encoding (no
// omitempty), so a ConstraintError at txn 0 or a subscription from index
// 0 is unambiguous on a debugger's screen.
func TestZeroValueFields(t *testing.T) {
	zero := &Msg{T: TypeError, Code: CodeConstraint, Name: "c0", Txn: 0, TS: 0, From: 0, Missed: 0}
	var buf bytes.Buffer
	if err := WriteFrameC(&buf, zero, CodecJSON); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[4:]
	for _, field := range []string{`"ts":0`, `"txn":0`, `"from":0`, `"missed":0`} {
		if !bytes.Contains(payload, []byte(field)) {
			t.Errorf("JSON frame drops zero-valued field %s: %s", field, payload)
		}
	}
	for _, c := range []Codec{CodecJSON, CodecBinary} {
		back := roundTrip(t, zero, c)
		if back.Txn != 0 || back.TS != 0 || back.From != 0 || back.Missed != 0 ||
			back.Name != "c0" || back.Code != CodeConstraint {
			t.Errorf("%s: zero-valued fields drifted: %+v", c, back)
		}
	}

	// Every field at its zero value at once: the empty-but-typed Msg must
	// round-trip both codecs to the same canonical form.
	for _, c := range []Codec{CodecJSON, CodecBinary} {
		back := roundTrip(t, &Msg{T: TypePing}, c)
		if got, want := canonJSON(t, back), canonJSON(t, &Msg{T: TypePing}); got != want {
			t.Errorf("%s: zero msg drifted: %s vs %s", c, got, want)
		}
	}
}

// TestBinaryRejectsGarbage spot-checks the decoder's bounds discipline
// beyond what the fuzzer explores structurally.
func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                    // empty payload (length 0 is rejected before decode)
		{200},                 // unknown type code
		{0},                   // escape with no string
		{0, 0},                // escape with empty type string
		{1, 99},               // valid type, unknown field tag
		{2, binUpdates, 0xff}, // truncated uvarint count
		{2, binUpdates, 0x08}, // count exceeding remaining bytes
		{2, binName, 0x20},    // string length beyond payload
	}
	for _, payload := range cases {
		if len(payload) == 0 {
			continue
		}
		if _, err := decodeBinaryMsg(payload); err == nil {
			t.Errorf("garbage payload % x decoded without error", payload)
		}
	}
}

// TestCodecNegotiationHelpers pins the negotiation truth table.
func TestCodecNegotiationHelpers(t *testing.T) {
	cases := []struct {
		offer []string
		want  Codec
	}{
		{nil, CodecJSON},
		{[]string{}, CodecJSON},
		{[]string{"json"}, CodecJSON},
		{[]string{"binary"}, CodecBinary},
		{[]string{"binary", "json"}, CodecBinary},
		{[]string{"json", "binary"}, CodecBinary},
		{[]string{"zstd-frames"}, CodecJSON}, // unknown codecs fall back
	}
	for _, tc := range cases {
		if got := PickCodec(tc.offer); got != tc.want {
			t.Errorf("PickCodec(%v) = %s, want %s", tc.offer, got, tc.want)
		}
	}
	for _, name := range DefaultCodecs() {
		if _, ok := ParseCodec(name); !ok {
			t.Errorf("default offer %q does not parse", name)
		}
	}
	if c, ok := ParseCodec("nope"); ok || c != CodecJSON {
		t.Errorf("ParseCodec(nope) = %v, %v", c, ok)
	}
}

// TestFrameWriterReuse checks the buffer-reusing writer against the
// one-shot path on a real connection, interleaving codecs and sizes.
func TestFrameWriterReuse(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		cs, ss := net.Pipe()
		defer cs.Close()
		defer ss.Close()
		fw := NewFrameWriter(cs, codec)
		if fw.Codec() != codec {
			t.Fatalf("codec = %v", fw.Codec())
		}
		msgs := sampleMsgs()
		go func() {
			for _, m := range msgs {
				if err := fw.Write(m); err != nil {
					return
				}
			}
		}()
		for _, m := range msgs {
			back, err := ReadFrameC(ss, codec)
			if err != nil {
				t.Fatalf("%s: read: %v", codec, err)
			}
			if got, want := canonJSON(t, back), canonJSON(t, roundTrip(t, m, codec)); got != want {
				t.Fatalf("%s: frame drifted through FrameWriter:\n%s\n%s", codec, got, want)
			}
		}
	}
}
