package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"ptlactive/internal/adb"
	"ptlactive/internal/core"
	"ptlactive/internal/value"
)

func frameBytes(t *testing.T, m *Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	in := &Msg{
		T: TypeTxn, ID: 7, TS: 42,
		Deletes: []string{"a", "b"},
		Name:    "r1",
	}
	got, err := ReadFrame(bytes.NewReader(frameBytes(t, in)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip: got %+v, want %+v", got, in)
	}
}

func TestFiringRoundTrip(t *testing.T) {
	f := adb.Firing{
		Rule: "doubled", Time: 8, StateIndex: 3,
		Binding: core.Binding{
			"x": value.NewFloat(10),
			"s": value.NewString("ibm"),
			"r": value.NewRelation([][]value.Value{{value.NewInt(1)}}),
		},
	}
	j, err := EncodeFiring(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if j.Seq != 5 {
		t.Fatalf("seq = %d", j.Seq)
	}
	back, err := DecodeFiring(j)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, f) {
		t.Fatalf("firing round trip: got %+v, want %+v", back, f)
	}
}

// TestTornFrames truncates a valid frame at every byte boundary: each
// prefix must fail with a torn-frame error (or io.EOF for the empty
// prefix), never succeed and never panic.
func TestTornFrames(t *testing.T) {
	full := frameBytes(t, &Msg{T: TypeOK, ID: 3, TS: 99})
	for cut := 0; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut at %d of %d: decoded successfully", cut, len(full))
		}
		if cut == 0 && err != io.EOF {
			t.Fatalf("empty stream: err = %v, want io.EOF", err)
		}
		if cut > 0 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	if _, err := ReadFrame(bytes.NewReader(full)); err != nil {
		t.Fatalf("full frame: %v", err)
	}
}

// TestGarbageBytes feeds hostile prefixes: oversized lengths, zero
// lengths, and non-JSON payloads must all error out cleanly.
func TestGarbageBytes(t *testing.T) {
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, MaxFrame+1)
	zero := make([]byte, 4)
	notJSON := []byte{0, 0, 0, 3, 'x', 'y', 'z'}
	noType := frameRaw([]byte(`{}`))
	for name, in := range map[string][]byte{
		"oversized length": huge,
		"zero length":      zero,
		"non-json payload": notJSON,
		"missing type":     noType,
	} {
		if _, err := ReadFrame(bytes.NewReader(in)); err == nil {
			t.Fatalf("%s: decoded successfully", name)
		}
	}
}

func frameRaw(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

func TestCheckHello(t *testing.T) {
	if err := CheckHello(Hello()); err != nil {
		t.Fatalf("own hello rejected: %v", err)
	}
	for _, bad := range []*Msg{
		{T: TypeTxn},
		{T: TypeHello, Proto: "other", Version: Version},
		{T: TypeHello, Proto: ProtoName, Version: Version + 1},
	} {
		err := CheckHello(bad)
		if !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("CheckHello(%+v) = %v, want ErrVersionMismatch", bad, err)
		}
	}
}

// TestErrorTaxonomyRoundTrip checks CodeFor and RemoteError.Unwrap are
// inverse: an engine error crosses the wire and still matches its
// sentinel with errors.Is.
func TestErrorTaxonomyRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{&adb.ConstraintError{Constraint: "c", Txn: 1}, CodeConstraint},
		{&adb.DegradedError{Cause: errors.New("disk")}, CodeDegraded},
		{&adb.QuarantineError{Rule: "r"}, CodeQuarantined},
		{&adb.BudgetError{Rule: "r", Steps: 2, Budget: 1}, CodeBudget},
		{&adb.TimeoutError{Rule: "r"}, CodeTimeout},
		{&adb.InternalError{Op: "x", Err: errors.New("y")}, CodeInternal},
		{ErrVersionMismatch, CodeVersion},
		{ErrSubscriberLagged, CodeLagged},
		{ErrSessionClosed, CodeClosed},
	}
	for _, c := range cases {
		if got := CodeFor(c.err); got != c.code {
			t.Fatalf("CodeFor(%v) = %q, want %q", c.err, got, c.code)
		}
		remote := &RemoteError{Code: c.code, Msg: c.err.Error()}
		if sentinel := remote.Unwrap(); sentinel == nil || !errors.Is(c.err, sentinel) {
			t.Fatalf("code %q: Unwrap = %v, does not match %v", c.code, sentinel, c.err)
		}
	}
	if got := CodeFor(errors.New("whatever")); got != CodeError {
		t.Fatalf("generic error mapped to %q", got)
	}
	generic := &RemoteError{Code: CodeError, Msg: "x"}
	if generic.Unwrap() != nil {
		t.Fatalf("generic code unwrapped to %v", generic.Unwrap())
	}
	if !strings.Contains(generic.Error(), "x") {
		t.Fatalf("message lost: %v", generic)
	}
}
