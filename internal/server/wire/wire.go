// Package wire is the network protocol of the active-database server: a
// length-prefixed, versioned binary framing whose payloads reuse the
// kind-tagged JSON value grammar of internal/histio, so every database
// value, event and rule binding crosses the wire in the same lossless
// encoding the durability layer writes to disk.
//
// A frame is a 4-byte big-endian payload length followed by that many
// payload bytes: one Msg in the connection's negotiated codec. The length
// is bounded by MaxFrame, so garbage bytes on the stream fail fast
// instead of allocating; a torn frame surfaces as io.ErrUnexpectedEOF.
// The first frame of every connection must be a hello carrying the
// protocol name and version; servers refuse mismatches with the
// "version" error code before anything else happens.
//
// Two payload codecs exist: the self-describing JSON codec (the v1
// format, the debugging default, and the fallback every peer speaks) and
// an allocation-light binary codec (codec.go) negotiated at handshake —
// the client's hello offers a codec list, the server picks binary when
// both ends speak it and echoes the choice in its hello reply. The hello
// exchange itself is always JSON, so peers that predate negotiation
// interoperate unchanged.
//
// The package also defines the error taxonomy shared by the server and
// client: sentinel errors for session teardown, subscriber lag and
// version mismatch, the wire error codes, and RemoteError — the
// client-side form of a server error frame, whose Unwrap maps codes back
// onto the engine's sentinels so errors.Is works across the network.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"ptlactive/internal/adb"
	"ptlactive/internal/core"
	"ptlactive/internal/histio"
	"ptlactive/internal/persist"
)

// Protocol identity. Version bumps whenever a frame's meaning changes
// incompatibly; hello frames carry it and both ends refuse mismatches.
const (
	ProtoName = "ptlactive"
	Version   = 1
)

// MaxFrame bounds one frame's payload. Larger prefixes are rejected
// before any allocation proportional to them, so a stream of garbage
// bytes cannot balloon memory.
const MaxFrame = 8 << 20

// Frame types (Msg.T). Requests flow client to server; ok/error answer
// them (echoing the request id); firing, gap and bye are pushed
// asynchronously to subscribers.
const (
	TypeHello     = "hello"
	TypeTxn       = "txn"
	TypeEmit      = "emit"
	TypeRule      = "rule"
	TypeRevive    = "revive"
	TypeQuery     = "query"
	TypeSubscribe = "subscribe"
	TypePing      = "ping"
	TypeOK        = "ok"
	TypeError     = "error"
	TypeFiring    = "firing"
	TypeGap       = "gap"
	TypeBye       = "bye"
	// TypeReplicate is a follower's stream request: "push me WAL batches
	// from Lsn, I am at Epoch". TypeWal is one pushed batch of byte-exact
	// primary WAL frames (Wal), stamped with its first LSN and the
	// primary's epoch.
	TypeReplicate = "replicate"
	TypeWal       = "wal"
	// TypeSnap is a snapshot-bootstrap chunk pushed to a follower whose
	// resume position fell behind the primary's retained WAL head: Wal
	// carries raw snapshot bytes, Lsn the LSN the snapshot covers, More
	// whether further chunks follow. After the final chunk the ordinary
	// wal stream resumes from Lsn+1.
	TypeSnap = "snap"
)

// Error codes carried by error frames; CodeFor and RemoteError.Unwrap are
// the two directions of the mapping.
const (
	CodeConstraint  = "constraint"
	CodeDegraded    = "degraded"
	CodeQuarantined = "quarantined"
	CodeBudget      = "budget"
	CodeTimeout     = "action_timeout"
	CodeInternal    = "internal"
	CodeVersion     = "version"
	CodeLagged      = "lagged"
	CodeClosed      = "closed"
	CodeBadRequest  = "bad_request"
	CodeBusy        = "busy"
	CodeCrossShard  = "cross_shard"
	CodeNotPrimary  = "not_primary"
	// CodeWalTruncated reports a replicate request whose resume position
	// predates the primary's retained WAL head and which could not be
	// served a snapshot bootstrap either.
	CodeWalTruncated = "wal_truncated"
	CodeError        = "error"
)

// Sentinel errors of the network layer; match with errors.Is. They are
// re-exported from the root ptlactive package alongside the engine's
// fault-isolation sentinels.
var (
	// ErrSessionClosed reports an operation on a session that has been
	// closed — by the client, by the server's graceful drain, or by a
	// connection failure.
	ErrSessionClosed = errors.New("server: session closed")
	// ErrSubscriberLagged reports a subscriber whose bounded firing queue
	// overflowed under the disconnect overflow policy.
	ErrSubscriberLagged = errors.New("server: subscriber lagged beyond its queue bound")
	// ErrVersionMismatch reports a hello whose protocol name or version the
	// peer does not speak.
	ErrVersionMismatch = errors.New("server: protocol version mismatch")
	// ErrCrossShard reports an operation a cluster router cannot place on
	// one shard: a transaction or emit whose items and event symbols hash
	// to different shards, or a rule whose footprint the placement oracle
	// cannot pin (unanalyzable reads, items spanning shards). Split the
	// operation along shard boundaries or re-key the data.
	ErrCrossShard = errors.New("cluster: operation spans multiple shards")
	// ErrNotPrimary reports a write sent to a replication follower, which
	// serves reads and firing subscriptions but refuses mutations. The
	// concrete error is usually a *NotPrimaryError carrying a primary hint.
	ErrNotPrimary = errors.New("server: node is not the primary")
	// ErrWalTruncated is the client-side sentinel for CodeWalTruncated:
	// the requested WAL position was garbage-collected behind a snapshot
	// and no snapshot bootstrap could stand in. On the server side the
	// condition is persist.ErrTruncatedHead.
	ErrWalTruncated = errors.New("server: wal position truncated behind a snapshot")
)

// NotPrimaryError is the typed form of ErrNotPrimary: a follower refusing
// a write, with a redirect hint to the primary it replicates from (""
// when unknown, e.g. mid-promotion). errors.Is(err, ErrNotPrimary) holds.
type NotPrimaryError struct {
	Leader string
}

// Error describes the refusal.
func (e *NotPrimaryError) Error() string {
	if e.Leader == "" {
		return "server: node is not the primary"
	}
	return fmt.Sprintf("server: node is not the primary (try %s)", e.Leader)
}

// Unwrap yields the sentinel so errors.Is works.
func (e *NotPrimaryError) Unwrap() error { return ErrNotPrimary }

// CodeFor maps an error to its wire code, via errors.Is over the engine
// and network sentinels; unrecognized errors map to the generic "error".
func CodeFor(err error) string {
	switch {
	case errors.Is(err, adb.ErrConstraintViolation):
		return CodeConstraint
	case errors.Is(err, adb.ErrDegraded):
		return CodeDegraded
	case errors.Is(err, adb.ErrRuleQuarantined):
		return CodeQuarantined
	case errors.Is(err, adb.ErrBudgetExceeded):
		return CodeBudget
	case errors.Is(err, adb.ErrActionTimeout):
		return CodeTimeout
	case errors.Is(err, adb.ErrInternal):
		return CodeInternal
	case errors.Is(err, ErrVersionMismatch):
		return CodeVersion
	case errors.Is(err, ErrSubscriberLagged):
		return CodeLagged
	case errors.Is(err, ErrSessionClosed):
		return CodeClosed
	case errors.Is(err, ErrCrossShard):
		return CodeCrossShard
	case errors.Is(err, ErrNotPrimary):
		return CodeNotPrimary
	case errors.Is(err, persist.ErrTruncatedHead), errors.Is(err, ErrWalTruncated):
		return CodeWalTruncated
	default:
		return CodeError
	}
}

// RemoteError is the client-side form of a server error frame. Unwrap
// maps the code back onto the matching sentinel, so errors.Is(err,
// ptlactive.ErrDegraded) holds across the network exactly as it would
// in-process. Constraint violations are not RemoteErrors: the client
// reconstructs a *adb.ConstraintError so errors.As keeps working too.
type RemoteError struct {
	Code string
	Msg  string
}

// Error describes the remote failure.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote: %s: %s", e.Code, e.Msg)
}

// Unwrap yields the sentinel the code stands for (nil for generic codes).
func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case CodeConstraint:
		return adb.ErrConstraintViolation
	case CodeDegraded:
		return adb.ErrDegraded
	case CodeQuarantined:
		return adb.ErrRuleQuarantined
	case CodeBudget:
		return adb.ErrBudgetExceeded
	case CodeTimeout:
		return adb.ErrActionTimeout
	case CodeInternal:
		return adb.ErrInternal
	case CodeVersion:
		return ErrVersionMismatch
	case CodeLagged:
		return ErrSubscriberLagged
	case CodeClosed:
		return ErrSessionClosed
	case CodeCrossShard:
		return ErrCrossShard
	case CodeNotPrimary:
		return ErrNotPrimary
	case CodeWalTruncated:
		return ErrWalTruncated
	default:
		return nil
	}
}

// FiringJSON is one rule firing on the wire: the push frame's payload and
// the element of firing-list query responses. Seq is the firing's absolute
// index in the server's firing log, so a subscriber can both resume
// (subscribe From) and detect delivery gaps.
type FiringJSON struct {
	Rule    string                     `json:"rule"`
	Time    int64                      `json:"time"`
	State   int                        `json:"state"`
	Seq     int                        `json:"seq"`
	Binding map[string]json.RawMessage `json:"binding,omitempty"`
}

// EncodeFiring renders a firing in wire form.
func EncodeFiring(f adb.Firing, seq int) (FiringJSON, error) {
	out := FiringJSON{Rule: f.Rule, Time: f.Time, State: f.StateIndex, Seq: seq}
	if len(f.Binding) > 0 {
		out.Binding = make(map[string]json.RawMessage, len(f.Binding))
		for name, v := range f.Binding {
			raw, err := histio.EncodeValue(v)
			if err != nil {
				return FiringJSON{}, fmt.Errorf("wire: binding %s: %w", name, err)
			}
			out.Binding[name] = raw
		}
	}
	return out, nil
}

// DecodeFiring inverts EncodeFiring.
func DecodeFiring(j FiringJSON) (adb.Firing, error) {
	f := adb.Firing{Rule: j.Rule, Time: j.Time, StateIndex: j.State}
	if len(j.Binding) > 0 {
		f.Binding = make(core.Binding, len(j.Binding))
		for name, raw := range j.Binding {
			v, err := histio.DecodeValue(raw)
			if err != nil {
				return adb.Firing{}, fmt.Errorf("wire: binding %s: %w", name, err)
			}
			f.Binding[name] = v
		}
	}
	return f, nil
}

// HealthJSON is one rule's health record in wire form; errors travel as
// strings (the concrete typed error does not cross the network).
type HealthJSON struct {
	Rule        string `json:"rule"`
	Quarantined bool   `json:"quarantined,omitempty"`
	Consecutive int    `json:"consecutive,omitempty"`
	Total       int    `json:"total,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	LastAt      int64  `json:"last_at,omitempty"`
}

// StorageJSON answers the "storage" query: the node's storage footprint
// (WAL segments, snapshot chain, retained-history window and cold tier).
// A cluster router sums the per-shard counters and reports the widest
// window fields.
type StorageJSON struct {
	Segments      int   `json:"segments"`
	WalBytes      int64 `json:"wal_bytes"`
	Snapshots     int   `json:"snapshots"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	HeadLsn       int64 `json:"head_lsn"`
	LastLsn       int64 `json:"last_lsn"`
	HistoryWindow int64 `json:"history_window,omitempty"`
	HistoryFloor  int64 `json:"history_floor,omitempty"`
	SpillHistory  bool  `json:"spill_history,omitempty"`
	TierRows      int64 `json:"tier_rows,omitempty"`
	TierBytes     int64 `json:"tier_bytes,omitempty"`
}

// RuleJSON describes one registered rule in wire form.
type RuleJSON struct {
	Name       string   `json:"name"`
	Condition  string   `json:"cond"`
	Constraint bool     `json:"constraint,omitempty"`
	Scheduling int      `json:"sched,omitempty"`
	Parameters []string `json:"params,omitempty"`
	Pending    int      `json:"pending,omitempty"`
}

// Msg is one frame's payload. A single struct covers every frame type;
// omitempty keeps the encoded form down to the fields the type uses.
//
// Zero-value audit: fields whose zero value is semantically load-bearing
// — TS (a transaction at time 0, or the timestamp echoed on an error
// reply), Txn (the violating transaction id in a constraint-error frame),
// From (subscribe/firings from index 0) and Missed (a gap frame) — do NOT
// use omitempty, so a legitimate zero is explicit on the wire instead of
// silently indistinguishable from "field absent". Purely optional payload
// fields keep omitempty; for them absent and zero mean the same thing by
// construction.
type Msg struct {
	T  string `json:"t"`
	ID uint64 `json:"id,omitempty"`

	// hello. Codecs is the sender's frame-codec offer in preference order
	// ("binary", "json"); Codec is the server's pick echoed in the hello
	// reply. Absent on either side means the legacy JSON-only protocol, so
	// version 1 peers interoperate unchanged.
	Proto   string   `json:"proto,omitempty"`
	Version int      `json:"version,omitempty"`
	Codecs  []string `json:"codecs,omitempty"`
	Codec   string   `json:"codec,omitempty"`

	// txn / emit: timestamp (0 = server assigns now+1), updates, deletes
	// and events in histio encoding. Responses echo the applied timestamp
	// in TS.
	TS      int64                      `json:"ts"`
	Updates map[string]json.RawMessage `json:"updates,omitempty"`
	Deletes []string                   `json:"deletes,omitempty"`
	Events  [][]json.RawMessage        `json:"events,omitempty"`

	// rule / revive / constraint-error detail
	Name       string `json:"name,omitempty"`
	Cond       string `json:"cond,omitempty"`
	Constraint bool   `json:"constraint,omitempty"`
	Sched      int    `json:"sched,omitempty"`
	Txn        int64  `json:"txn"`

	// query request ("db", "firings", "rules", "health", "now") and
	// subscribe; From bounds firing lists and subscription starts.
	What string `json:"what,omitempty"`
	From int    `json:"from"`

	// error responses
	Code string `json:"code,omitempty"`
	Err  string `json:"err,omitempty"`

	// response payloads
	Items    map[string]json.RawMessage `json:"items,omitempty"`
	Firings  []FiringJSON               `json:"firings,omitempty"`
	Rules    []RuleJSON                 `json:"rules,omitempty"`
	Health   []HealthJSON               `json:"health,omitempty"`
	Degraded string                     `json:"degraded,omitempty"`

	// firing push payload: Firing for a single push, Firings for a batched
	// multi-firing push (sessions that negotiated a codec list coalesce
	// queued firings into one frame per write). Gap pushes carry Missed.
	Firing *FiringJSON `json:"firing,omitempty"`
	Missed int         `json:"missed"`

	// Replication (replicate requests, wal pushes) and the "role" query
	// response. Lsn is the follower's resume position on a replicate
	// request and the first frame's LSN on a wal push — WAL LSNs start at
	// 1, so zero is never legal and omitempty is safe. Epoch is the
	// primary epoch (0 = never promoted; absent and zero coincide by
	// construction). Wal carries byte-exact primary WAL frames (base64 on
	// the JSON wire). Role/Leader answer the "role" query and decorate
	// not_primary refusals with a redirect hint.
	Lsn    int64  `json:"lsn,omitempty"`
	Epoch  int64  `json:"epoch,omitempty"`
	Wal    []byte `json:"wal,omitempty"`
	Role   string `json:"role,omitempty"`
	Leader string `json:"leader,omitempty"`
	// More marks a chunked push (snap frames) whose payload continues in
	// the next frame of the same type. Storage answers the "storage"
	// query.
	More    bool         `json:"more,omitempty"`
	Storage *StorageJSON `json:"storage,omitempty"`
}

// WriteFrame encodes m and writes one length-prefixed frame.
func WriteFrame(w io.Writer, m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: encode %s frame: %w", m.T, err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: %s frame of %d bytes exceeds MaxFrame %d", m.T, len(payload), MaxFrame)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame. A clean end of stream before the first
// length byte is io.EOF; a stream cut mid-frame is io.ErrUnexpectedEOF; a
// length prefix of zero or beyond MaxFrame, or a payload that is not one
// JSON Msg, is a protocol error. ReadFrame never panics on garbage input
// (see FuzzReadFrame).
func ReadFrame(r io.Reader) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: torn frame header: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d out of range (1..%d)", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: torn frame payload: %w", err)
	}
	m := &Msg{}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, fmt.Errorf("wire: bad frame payload: %w", err)
	}
	if m.T == "" {
		return nil, fmt.Errorf("wire: frame without a type")
	}
	return m, nil
}

// Hello builds the handshake frame a client must send first.
func Hello() *Msg { return &Msg{T: TypeHello, Proto: ProtoName, Version: Version} }

// CheckHello validates a received handshake frame.
func CheckHello(m *Msg) error {
	if m.T != TypeHello {
		return fmt.Errorf("%w: first frame is %q, want hello", ErrVersionMismatch, m.T)
	}
	if m.Proto != ProtoName || m.Version != Version {
		return fmt.Errorf("%w: peer speaks %s/%d, want %s/%d",
			ErrVersionMismatch, m.Proto, m.Version, ProtoName, Version)
	}
	return nil
}
