package wire

// The binary frame codec. Frames keep the 4-byte big-endian length
// prefix of the v1 protocol; only the payload encoding changes. A binary
// payload is
//
//	type byte | (field tag byte, field value)*
//
// where the type byte indexes a fixed table of frame types (0 is an
// escape: a length-prefixed literal type string follows, so unknown
// frame types survive re-encoding). Integers are varints (zigzag for
// signed fields), strings and raw JSON values are length-prefixed byte
// strings, and composite fields (item maps, event lists, firing/rule/
// health records) are count-prefixed sequences. Fields at their zero
// value are skipped — the decoder's zero is the same zero, so the two
// codecs are value-equivalent (see TestCrossCodecRoundTrip and the fuzz
// harnesses).
//
// Database values still cross the wire in the kind-tagged JSON grammar
// of internal/histio, embedded as opaque byte strings: the durability
// layer, the JSON codec and the binary codec share one lossless value
// encoding, and the binary codec's win — no reflective struct marshal,
// no per-frame map of field names, one buffer reused across frames — is
// exactly the per-frame overhead the JSON codec pays.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"unicode/utf8"
)

// Codec selects a frame payload encoding.
type Codec int

const (
	// CodecJSON is the self-describing v1 payload encoding: one JSON Msg.
	// Every peer speaks it; it is the fallback when negotiation is absent
	// and the debugging default of adbsh.
	CodecJSON Codec = iota
	// CodecBinary is the allocation-light binary payload encoding,
	// negotiated at handshake.
	CodecBinary
)

// Codec names as they appear in hello frames.
const (
	CodecNameJSON   = "json"
	CodecNameBinary = "binary"
)

// String returns the codec's wire name.
func (c Codec) String() string {
	if c == CodecBinary {
		return CodecNameBinary
	}
	return CodecNameJSON
}

// ParseCodec maps a wire name to its codec.
func ParseCodec(name string) (Codec, bool) {
	switch name {
	case CodecNameJSON:
		return CodecJSON, true
	case CodecNameBinary:
		return CodecBinary, true
	}
	return CodecJSON, false
}

// DefaultCodecs is the offer a codec-aware client sends in its hello, in
// preference order.
func DefaultCodecs() []string { return []string{CodecNameBinary, CodecNameJSON} }

// PickCodec implements the server side of negotiation: binary when the
// peer offered it, JSON otherwise (including the legacy empty offer).
func PickCodec(offered []string) Codec {
	for _, name := range offered {
		if name == CodecNameBinary {
			return CodecBinary
		}
	}
	return CodecJSON
}

// WriteFrameC encodes m in codec c and writes one length-prefixed frame.
// One-shot form of FrameWriter.Write; hot paths should hold a FrameWriter
// to reuse its buffer.
func WriteFrameC(w io.Writer, m *Msg, c Codec) error {
	fw := FrameWriter{w: w, codec: c}
	return fw.Write(m)
}

// ReadFrameC reads one frame whose payload is in codec c. Error contract
// is that of ReadFrame.
func ReadFrameC(r io.Reader, c Codec) (*Msg, error) {
	if c == CodecJSON {
		return ReadFrame(r)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: torn frame header: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d out of range (1..%d)", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: torn frame payload: %w", err)
	}
	return decodeBinaryMsg(payload)
}

// FrameWriter writes frames in one codec, reusing an internal buffer
// across writes so steady-state encoding allocates nothing for the frame
// itself. It is not safe for concurrent use; callers serialize (the
// client's write mutex, the session's single writer goroutine).
type FrameWriter struct {
	w     io.Writer
	codec Codec
	buf   []byte
}

// NewFrameWriter returns a FrameWriter over w in codec c.
func NewFrameWriter(w io.Writer, c Codec) *FrameWriter {
	return &FrameWriter{w: w, codec: c}
}

// SetCodec switches the payload encoding (after handshake negotiation).
func (fw *FrameWriter) SetCodec(c Codec) { fw.codec = c }

// Codec reports the current payload encoding.
func (fw *FrameWriter) Codec() Codec { return fw.codec }

// Write encodes m and writes one length-prefixed frame.
func (fw *FrameWriter) Write(m *Msg) error {
	fw.buf = append(fw.buf[:0], 0, 0, 0, 0)
	if fw.codec == CodecBinary {
		fw.buf = appendBinaryMsg(fw.buf, m)
	} else {
		payload, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("wire: encode %s frame: %w", m.T, err)
		}
		fw.buf = append(fw.buf, payload...)
	}
	n := len(fw.buf) - 4
	if n > MaxFrame {
		return fmt.Errorf("wire: %s frame of %d bytes exceeds MaxFrame %d", m.T, n, MaxFrame)
	}
	binary.BigEndian.PutUint32(fw.buf[:4], uint32(n))
	_, err := fw.w.Write(fw.buf)
	// One oversized frame (a big query response) must not pin its buffer
	// for the life of the connection.
	if cap(fw.buf) > 1<<20 {
		fw.buf = nil
	}
	return err
}

// Frame type codes. 0 escapes to a literal string so a Msg whose T is
// outside this table (a future frame type crossing an old relay, or
// fuzz-generated input) still round-trips.
var typeCodes = map[string]byte{
	TypeHello:     1,
	TypeTxn:       2,
	TypeEmit:      3,
	TypeRule:      4,
	TypeRevive:    5,
	TypeQuery:     6,
	TypeSubscribe: 7,
	TypePing:      8,
	TypeOK:        9,
	TypeError:     10,
	TypeFiring:    11,
	TypeGap:       12,
	TypeBye:       13,
	TypeReplicate: 14,
	TypeWal:       15,
	TypeSnap:      16,
}

var typeNames = func() map[byte]string {
	m := make(map[byte]string, len(typeCodes))
	for name, code := range typeCodes {
		m[code] = name
	}
	return m
}()

// Field tags of the binary Msg encoding. Tags are append-only: a new
// field gets a new tag, old tags are never reused.
const (
	binID byte = iota + 1
	binProto
	binVersion
	binCodecs
	binCodec
	binTS
	binUpdates
	binDeletes
	binEvents
	binName
	binCond
	binConstraint
	binSched
	binTxn
	binWhat
	binFrom
	binCode
	binErr
	binItems
	binFirings
	binRules
	binHealth
	binDegraded
	binFiring
	binMissed
	binLsn
	binEpoch
	binWal
	binRole
	binLeader
	binMore
	binStorage
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendRaw(b []byte, r json.RawMessage) []byte {
	b = binary.AppendUvarint(b, uint64(len(r)))
	return append(b, r...)
}

func appendRawMap(b []byte, m map[string]json.RawMessage) []byte {
	b = binary.AppendUvarint(b, uint64(len(m)))
	for k, v := range m {
		b = appendString(b, k)
		b = appendRaw(b, v)
	}
	return b
}

func appendFiring(b []byte, f *FiringJSON) []byte {
	b = appendString(b, f.Rule)
	b = binary.AppendVarint(b, f.Time)
	b = binary.AppendVarint(b, int64(f.State))
	b = binary.AppendVarint(b, int64(f.Seq))
	b = appendRawMap(b, f.Binding)
	return b
}

// appendBinaryMsg renders m in the binary payload encoding. Fields at
// their zero value are skipped; the decoder's zero restores them.
func appendBinaryMsg(b []byte, m *Msg) []byte {
	if code, ok := typeCodes[m.T]; ok {
		b = append(b, code)
	} else {
		b = append(b, 0)
		b = appendString(b, m.T)
	}
	if m.ID != 0 {
		b = append(b, binID)
		b = binary.AppendUvarint(b, m.ID)
	}
	if m.Proto != "" {
		b = append(b, binProto)
		b = appendString(b, m.Proto)
	}
	if m.Version != 0 {
		b = append(b, binVersion)
		b = binary.AppendVarint(b, int64(m.Version))
	}
	if len(m.Codecs) > 0 {
		b = append(b, binCodecs)
		b = binary.AppendUvarint(b, uint64(len(m.Codecs)))
		for _, name := range m.Codecs {
			b = appendString(b, name)
		}
	}
	if m.Codec != "" {
		b = append(b, binCodec)
		b = appendString(b, m.Codec)
	}
	if m.TS != 0 {
		b = append(b, binTS)
		b = binary.AppendVarint(b, m.TS)
	}
	if len(m.Updates) > 0 {
		b = append(b, binUpdates)
		b = appendRawMap(b, m.Updates)
	}
	if len(m.Deletes) > 0 {
		b = append(b, binDeletes)
		b = binary.AppendUvarint(b, uint64(len(m.Deletes)))
		for _, name := range m.Deletes {
			b = appendString(b, name)
		}
	}
	if len(m.Events) > 0 {
		b = append(b, binEvents)
		b = binary.AppendUvarint(b, uint64(len(m.Events)))
		for _, rec := range m.Events {
			// The inner count is presence-encoded (0 = null record, v = a
			// record of v-1 values) so null and empty records — both legal
			// JSON — survive the round trip distinctly.
			if rec == nil {
				b = append(b, 0)
				continue
			}
			b = binary.AppendUvarint(b, uint64(len(rec))+1)
			for _, raw := range rec {
				b = appendRaw(b, raw)
			}
		}
	}
	if m.Name != "" {
		b = append(b, binName)
		b = appendString(b, m.Name)
	}
	if m.Cond != "" {
		b = append(b, binCond)
		b = appendString(b, m.Cond)
	}
	if m.Constraint {
		b = append(b, binConstraint, 1)
	}
	if m.Sched != 0 {
		b = append(b, binSched)
		b = binary.AppendVarint(b, int64(m.Sched))
	}
	if m.Txn != 0 {
		b = append(b, binTxn)
		b = binary.AppendVarint(b, m.Txn)
	}
	if m.What != "" {
		b = append(b, binWhat)
		b = appendString(b, m.What)
	}
	if m.From != 0 {
		b = append(b, binFrom)
		b = binary.AppendVarint(b, int64(m.From))
	}
	if m.Code != "" {
		b = append(b, binCode)
		b = appendString(b, m.Code)
	}
	if m.Err != "" {
		b = append(b, binErr)
		b = appendString(b, m.Err)
	}
	if len(m.Items) > 0 {
		b = append(b, binItems)
		b = appendRawMap(b, m.Items)
	}
	if len(m.Firings) > 0 {
		b = append(b, binFirings)
		b = binary.AppendUvarint(b, uint64(len(m.Firings)))
		for i := range m.Firings {
			b = appendFiring(b, &m.Firings[i])
		}
	}
	if len(m.Rules) > 0 {
		b = append(b, binRules)
		b = binary.AppendUvarint(b, uint64(len(m.Rules)))
		for i := range m.Rules {
			r := &m.Rules[i]
			b = appendString(b, r.Name)
			b = appendString(b, r.Condition)
			if r.Constraint {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.AppendVarint(b, int64(r.Scheduling))
			b = binary.AppendUvarint(b, uint64(len(r.Parameters)))
			for _, p := range r.Parameters {
				b = appendString(b, p)
			}
			b = binary.AppendVarint(b, int64(r.Pending))
		}
	}
	if len(m.Health) > 0 {
		b = append(b, binHealth)
		b = binary.AppendUvarint(b, uint64(len(m.Health)))
		for i := range m.Health {
			h := &m.Health[i]
			b = appendString(b, h.Rule)
			if h.Quarantined {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.AppendVarint(b, int64(h.Consecutive))
			b = binary.AppendVarint(b, int64(h.Total))
			b = appendString(b, h.LastError)
			b = binary.AppendVarint(b, h.LastAt)
		}
	}
	if m.Degraded != "" {
		b = append(b, binDegraded)
		b = appendString(b, m.Degraded)
	}
	if m.Firing != nil {
		b = append(b, binFiring)
		b = appendFiring(b, m.Firing)
	}
	if m.Missed != 0 {
		b = append(b, binMissed)
		b = binary.AppendVarint(b, int64(m.Missed))
	}
	if m.Lsn != 0 {
		b = append(b, binLsn)
		b = binary.AppendVarint(b, m.Lsn)
	}
	if m.Epoch != 0 {
		b = append(b, binEpoch)
		b = binary.AppendVarint(b, m.Epoch)
	}
	if len(m.Wal) > 0 {
		b = append(b, binWal)
		b = binary.AppendUvarint(b, uint64(len(m.Wal)))
		b = append(b, m.Wal...)
	}
	if m.Role != "" {
		b = append(b, binRole)
		b = appendString(b, m.Role)
	}
	if m.Leader != "" {
		b = append(b, binLeader)
		b = appendString(b, m.Leader)
	}
	if m.More {
		b = append(b, binMore, 1)
	}
	if m.Storage != nil {
		s := m.Storage
		b = append(b, binStorage)
		b = binary.AppendVarint(b, int64(s.Segments))
		b = binary.AppendVarint(b, s.WalBytes)
		b = binary.AppendVarint(b, int64(s.Snapshots))
		b = binary.AppendVarint(b, s.SnapshotBytes)
		b = binary.AppendVarint(b, s.HeadLsn)
		b = binary.AppendVarint(b, s.LastLsn)
		b = binary.AppendVarint(b, s.HistoryWindow)
		b = binary.AppendVarint(b, s.HistoryFloor)
		if s.SpillHistory {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendVarint(b, s.TierRows)
		b = binary.AppendVarint(b, s.TierBytes)
	}
	return b
}

// binReader decodes the binary payload encoding. Every accessor checks
// bounds and latches the first error; callers check err once per
// composite instead of per read. It never panics on garbage input (see
// FuzzReadFrameBinary).
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: bad binary frame: "+format, args...)
	}
}

func (r *binReader) rem() int { return len(r.b) - r.off }

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated")
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length and bounds it by the remaining bytes
// (every element is at least one byte), so a hostile count cannot force
// a huge allocation.
func (r *binReader) count() int {
	n := r.uvarint()
	if r.err == nil && n > uint64(r.rem()) {
		r.fail("count %d exceeds remaining %d bytes", n, r.rem())
		return 0
	}
	return int(n)
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.rem()) {
		r.fail("string of %d bytes exceeds remaining %d", n, r.rem())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	// The JSON wire can only deliver valid UTF-8 (encoding/json sanitizes
	// on both ends); holding binary frames to the same rule keeps every
	// accepted Msg expressible on either codec byte-for-byte.
	if !utf8.ValidString(s) {
		r.fail("string %.32q is not valid UTF-8", s)
		return ""
	}
	return s
}

func (r *binReader) raw() json.RawMessage {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.rem()) {
		r.fail("raw value of %d bytes exceeds remaining %d", n, r.rem())
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make(json.RawMessage, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	// Embedded values must stay in the JSON value grammar: anything this
	// decoder accepts has to re-encode on the JSON wire, and downstream
	// consumers (histio, the evaluator) assume well-formed values.
	if !json.Valid(out) {
		r.fail("raw value is not JSON: %.32q", []byte(out))
		return nil
	}
	return out
}

// bytes reads a length-prefixed opaque byte string (no UTF-8 or JSON
// validation — WAL frames are arbitrary bytes; the JSON codec carries
// them as base64).
func (r *binReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.rem()) {
		r.fail("byte string of %d bytes exceeds remaining %d", n, r.rem())
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *binReader) bool() bool { return r.byte() != 0 }

func (r *binReader) rawMap() map[string]json.RawMessage {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]json.RawMessage, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		out[k] = r.raw()
	}
	return out
}

func (r *binReader) firing() FiringJSON {
	return FiringJSON{
		Rule:    r.str(),
		Time:    r.varint(),
		State:   int(r.varint()),
		Seq:     int(r.varint()),
		Binding: r.rawMap(),
	}
}

// decodeBinaryMsg inverts appendBinaryMsg.
func decodeBinaryMsg(payload []byte) (*Msg, error) {
	r := &binReader{b: payload}
	m := &Msg{}
	if code := r.byte(); code == 0 {
		m.T = r.str()
	} else if name, ok := typeNames[code]; ok {
		m.T = name
	} else {
		return nil, fmt.Errorf("wire: bad binary frame: unknown type code %d", code)
	}
	if m.T == "" && r.err == nil {
		return nil, fmt.Errorf("wire: frame without a type")
	}
	for r.err == nil && r.rem() > 0 {
		switch tag := r.byte(); tag {
		case binID:
			m.ID = r.uvarint()
		case binProto:
			m.Proto = r.str()
		case binVersion:
			m.Version = int(r.varint())
		case binCodecs:
			n := r.count()
			for i := 0; i < n && r.err == nil; i++ {
				m.Codecs = append(m.Codecs, r.str())
			}
		case binCodec:
			m.Codec = r.str()
		case binTS:
			m.TS = r.varint()
		case binUpdates:
			m.Updates = r.rawMap()
		case binDeletes:
			n := r.count()
			for i := 0; i < n && r.err == nil; i++ {
				m.Deletes = append(m.Deletes, r.str())
			}
		case binEvents:
			n := r.count()
			for i := 0; i < n && r.err == nil; i++ {
				// Presence-encoded inner count: 0 is a null record, v is a
				// record of v-1 values.
				nr := r.uvarint()
				if r.err != nil {
					break
				}
				if nr == 0 {
					m.Events = append(m.Events, nil)
					continue
				}
				nr--
				if nr > uint64(r.rem()) {
					r.fail("count %d exceeds remaining %d bytes", nr, r.rem())
					break
				}
				rec := make([]json.RawMessage, 0, nr)
				for j := uint64(0); j < nr && r.err == nil; j++ {
					rec = append(rec, r.raw())
				}
				m.Events = append(m.Events, rec)
			}
		case binName:
			m.Name = r.str()
		case binCond:
			m.Cond = r.str()
		case binConstraint:
			m.Constraint = r.bool()
		case binSched:
			m.Sched = int(r.varint())
		case binTxn:
			m.Txn = r.varint()
		case binWhat:
			m.What = r.str()
		case binFrom:
			m.From = int(r.varint())
		case binCode:
			m.Code = r.str()
		case binErr:
			m.Err = r.str()
		case binItems:
			m.Items = r.rawMap()
		case binFirings:
			n := r.count()
			for i := 0; i < n && r.err == nil; i++ {
				m.Firings = append(m.Firings, r.firing())
			}
		case binRules:
			n := r.count()
			for i := 0; i < n && r.err == nil; i++ {
				rj := RuleJSON{Name: r.str(), Condition: r.str(), Constraint: r.bool()}
				rj.Scheduling = int(r.varint())
				np := r.count()
				for j := 0; j < np && r.err == nil; j++ {
					rj.Parameters = append(rj.Parameters, r.str())
				}
				rj.Pending = int(r.varint())
				m.Rules = append(m.Rules, rj)
			}
		case binHealth:
			n := r.count()
			for i := 0; i < n && r.err == nil; i++ {
				hj := HealthJSON{Rule: r.str(), Quarantined: r.bool()}
				hj.Consecutive = int(r.varint())
				hj.Total = int(r.varint())
				hj.LastError = r.str()
				hj.LastAt = r.varint()
				m.Health = append(m.Health, hj)
			}
		case binDegraded:
			m.Degraded = r.str()
		case binFiring:
			f := r.firing()
			m.Firing = &f
		case binMissed:
			m.Missed = int(r.varint())
		case binLsn:
			m.Lsn = r.varint()
		case binEpoch:
			m.Epoch = r.varint()
		case binWal:
			m.Wal = r.bytes()
		case binRole:
			m.Role = r.str()
		case binLeader:
			m.Leader = r.str()
		case binMore:
			m.More = r.bool()
		case binStorage:
			s := &StorageJSON{}
			s.Segments = int(r.varint())
			s.WalBytes = r.varint()
			s.Snapshots = int(r.varint())
			s.SnapshotBytes = r.varint()
			s.HeadLsn = r.varint()
			s.LastLsn = r.varint()
			s.HistoryWindow = r.varint()
			s.HistoryFloor = r.varint()
			s.SpillHistory = r.bool()
			s.TierRows = r.varint()
			s.TierBytes = r.varint()
			m.Storage = s
		default:
			r.fail("unknown field tag %d", tag)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}
