package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame throws arbitrary bytes at the frame decoder: it must
// never panic, and anything it accepts must re-encode and decode to the
// same message (the payload grammar is canonical JSON, so accepted input
// round-trips through WriteFrame).
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Hello()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())-2])
	var txn bytes.Buffer
	if err := WriteFrame(&txn, &Msg{T: TypeTxn, ID: 1, TS: 5, Deletes: []string{"a"}}); err != nil {
		f.Fatal(err)
	}
	f.Add(txn.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := WriteFrame(&re, m); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		back, err := ReadFrame(&re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if back.T != m.T || back.ID != m.ID || back.TS != m.TS {
			t.Fatalf("round trip drifted: %+v vs %+v", back, m)
		}
	})
}
