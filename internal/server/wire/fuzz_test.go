package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame throws arbitrary bytes at the frame decoder: it must
// never panic, and anything it accepts must re-encode and decode to the
// same message (the payload grammar is canonical JSON, so accepted input
// round-trips through WriteFrame).
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Hello()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())-2])
	var txn bytes.Buffer
	if err := WriteFrame(&txn, &Msg{T: TypeTxn, ID: 1, TS: 5, Deletes: []string{"a"}}); err != nil {
		f.Fatal(err)
	}
	f.Add(txn.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := WriteFrame(&re, m); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		back, err := ReadFrame(&re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if back.T != m.T || back.ID != m.ID || back.TS != m.TS {
			t.Fatalf("round trip drifted: %+v vs %+v", back, m)
		}
		// Cross-codec property: any Msg the JSON wire accepts also crosses
		// the binary wire and lands on the same canonical JSON.
		var bin bytes.Buffer
		if err := WriteFrameC(&bin, m, CodecBinary); err != nil {
			t.Fatalf("accepted JSON frame does not binary-encode: %v", err)
		}
		viaBin, err := ReadFrameC(&bin, CodecBinary)
		if err != nil {
			t.Fatalf("binary re-encode does not decode: %v", err)
		}
		if got, want := canonJSON(t, viaBin), canonJSON(t, m); got != want {
			t.Fatalf("cross-codec drift:\n json:   %s\n binary: %s", want, got)
		}
	})
}

// FuzzReadFrameBinary throws arbitrary bytes at the binary frame decoder:
// it must never panic or over-allocate, and any frame it accepts must
// re-encode and decode to the same message through both codecs.
func FuzzReadFrameBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 1, 200})         // unknown type code
	f.Add([]byte{0, 0, 0, 2, 0, 0})        // escape with empty type string
	f.Add([]byte{0, 0, 0, 3, 2, 20, 0xff}) // truncated varint
	f.Add([]byte{0, 0, 0, 3, 2, 27, 0x7f}) // count beyond payload
	for _, m := range sampleMsgs() {
		var buf bytes.Buffer
		if err := WriteFrameC(&buf, m, CodecBinary); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 6 {
			f.Add(buf.Bytes()[:buf.Len()-2]) // truncated tail
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrameC(bytes.NewReader(data), CodecBinary)
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := WriteFrameC(&re, m, CodecBinary); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		back, err := ReadFrameC(&re, CodecBinary)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if got, want := canonJSON(t, back), canonJSON(t, m); got != want {
			t.Fatalf("binary round trip drifted:\n%s\n%s", want, got)
		}
		// And through the JSON wire: whatever the binary decoder accepts is
		// a legal Msg on the debuggable codec too.
		var jb bytes.Buffer
		if err := WriteFrameC(&jb, m, CodecJSON); err != nil {
			t.Fatalf("accepted binary frame does not JSON-encode: %v", err)
		}
		viaJSON, err := ReadFrameC(&jb, CodecJSON)
		if err != nil {
			t.Fatalf("JSON re-encode does not decode: %v", err)
		}
		if got, want := canonJSON(t, viaJSON), canonJSON(t, m); got != want {
			t.Fatalf("cross-codec drift:\n binary: %s\n json:   %s", want, got)
		}
	})
}
