package server

import (
	"bufio"
	"net"
	"sync"
	"time"

	"ptlactive/internal/server/wire"
)

// sessionBufSize sizes the per-session buffered reader and writer: big
// enough that a pipelined burst of frames costs one syscall per
// direction, small enough to be cheap at high connection counts.
const sessionBufSize = 32 << 10

// maxFiringBatch bounds how many queued firings coalesce into one
// multi-firing frame: large enough to amortize the syscall and encode
// cost under fan-out load, small enough that one frame stays far from
// MaxFrame and a draining peer sees steady progress.
const maxFiringBatch = 128

// session is one accepted connection: a reader goroutine (handshake,
// request dispatch) plus a writer goroutine draining the outbound queue.
// Responses and pushed firings share the queue, so each client observes
// one totally ordered stream. The queue is unbounded for responses —
// every request gets its answer — while firing pushes are bounded by the
// server's SubscriberQueue and subject to the overflow policy.
type session struct {
	srv  *Server
	conn net.Conn
	// br buffers reads from conn: frame headers and payloads coalesce
	// into one syscall per burst. Only the reader goroutine touches it.
	br *bufio.Reader

	// codec is the payload encoding negotiated at handshake; batch says
	// the peer understands batched multi-firing frames (it sent a codec
	// offer, so it postdates negotiation). Both are written once by the
	// handshake, before the writer goroutine starts and before the read
	// loop dispatches, so they are read without the lock.
	codec wire.Codec
	batch bool

	mu   sync.Mutex
	cond *sync.Cond
	// queue is the outbound frame deque; nfirings counts the firing frames
	// currently in it (the bounded part).
	queue    []*wire.Msg
	nfirings int
	// gap accumulates firings dropped under the drop-with-gap policy; it
	// is materialized as a gap frame the next time the queue has room, so
	// the marker sits exactly where the missing firings would have been.
	gap        int
	subscribed bool
	// Replication stream state: replicating marks the session as a WAL
	// follower feed, nwal counts queued wal frames (bounded like firings:
	// a follower that cannot keep up is disconnected and resumes by LSN
	// after redialing), cancelWAL detaches the session's sink from the
	// shipper at teardown.
	replicating bool
	nwal        int
	cancelWAL   func()
	// draining: the writer closes the connection once the queue empties
	// (graceful drain). closed: no further enqueues; the writer exits as
	// soon as it observes it.
	draining bool
	closed   bool
	// failure records why the session died (ErrSubscriberLagged on a
	// disconnect-policy overflow; nil on clean teardown).
	failure error
}

func newSession(srv *Server, conn net.Conn) *session {
	s := &session{srv: srv, conn: conn, br: bufio.NewReaderSize(conn, sessionBufSize)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue appends a response frame; responses are never dropped (a closed
// session discards them — the peer is gone).
func (s *session) enqueue(m *wire.Msg) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, m)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// pushFiring offers one firing to the subscriber under the bounded-queue
// policy; a no-op for sessions that never subscribed.
func (s *session) pushFiring(fj *wire.FiringJSON) {
	s.mu.Lock()
	s.pushFiringLocked(fj)
	s.mu.Unlock()
}

func (s *session) pushFiringLocked(fj *wire.FiringJSON) {
	if s.closed || !s.subscribed {
		return
	}
	if s.nfirings >= s.srv.cfg.SubscriberQueue {
		switch s.srv.cfg.Overflow {
		case DropWithGap:
			s.gap++
		case Disconnect:
			// The writer may be blocked mid-frame on a full socket; closing
			// the connection is the only way to shed the lagging subscriber
			// without stalling the broadcast.
			s.failure = wire.ErrSubscriberLagged
			s.closed = true
			s.conn.Close()
			s.cond.Broadcast()
		}
		return
	}
	if s.gap > 0 {
		s.queue = append(s.queue, &wire.Msg{T: wire.TypeGap, Missed: s.gap})
		s.gap = 0
	}
	s.queue = append(s.queue, &wire.Msg{T: wire.TypeFiring, Firing: fj})
	s.nfirings++
	s.cond.Broadcast()
}

// pushWAL offers one replication batch to the follower feed. WAL frames
// are bounded like firings, but the only sane overflow policy is
// disconnect: dropping a batch would leave an LSN gap the follower can
// never apply across, while a redial resumes exactly at its last LSN.
func (s *session) pushWAL(m *wire.Msg) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.nwal >= s.srv.cfg.SubscriberQueue {
		s.failure = wire.ErrSubscriberLagged
		s.closed = true
		s.conn.Close()
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, m)
	s.nwal++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// setCancelWAL records the shipper detach hook; takeCancelWAL claims it
// (once) for the session teardown path.
func (s *session) setCancelWAL(cancel func()) {
	s.mu.Lock()
	s.cancelWAL = cancel
	s.mu.Unlock()
}

func (s *session) takeCancelWAL() func() {
	s.mu.Lock()
	cancel := s.cancelWAL
	s.cancelWAL = nil
	s.mu.Unlock()
	return cancel
}

// dropGap records n firings as lost (used when a firing fails to encode —
// the subscriber learns it missed something rather than silently skipping).
func (s *session) dropGap(n int) {
	s.mu.Lock()
	if !s.closed && s.subscribed {
		s.gap += n
	}
	s.mu.Unlock()
}

// beginDrain puts the session into graceful-drain mode: a trailing gap
// marker (if one is pending) and a bye frame are queued, and the writer
// closes the connection once everything queued — including any backlog of
// subscribed firings — has been flushed.
func (s *session) beginDrain() {
	s.mu.Lock()
	if !s.closed && !s.draining {
		if s.gap > 0 {
			s.queue = append(s.queue, &wire.Msg{T: wire.TypeGap, Missed: s.gap})
			s.gap = 0
		}
		s.queue = append(s.queue, &wire.Msg{T: wire.TypeBye})
		s.draining = true
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fail tears the session down immediately: pending frames are abandoned
// and the connection closed.
func (s *session) fail(err error) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.failure == nil {
			s.failure = err
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
}

// writeLoop drains the outbound queue onto the connection. Each frame
// gets its own write deadline, so a peer that stops reading cannot stall
// the server's drain forever.
//
// Batched delivery: for peers that negotiated (batch), a consecutive run
// of queued firing frames is coalesced into one multi-firing frame per
// write — under fan-out load the whole backlog behind a slow write goes
// out in one encode instead of one per firing. Gap markers and responses
// are never reordered: coalescing stops at the first non-firing frame.
//
// Group flush: frames are encoded into a buffered writer and flushed
// only when the queue goes empty, so a burst of responses to a
// pipelining client (or a firing backlog) costs one syscall, not one
// per frame.
func (s *session) writeLoop() {
	bw := bufio.NewWriterSize(s.conn, sessionBufSize)
	fw := wire.NewFrameWriter(bw, s.codec)
	var batch []wire.FiringJSON
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed && !s.draining {
			s.cond.Wait()
		}
		if s.closed || len(s.queue) == 0 {
			// Closed, or draining with an empty queue: flush is complete.
			s.closed = true
			s.mu.Unlock()
			if t := s.srv.cfg.WriteTimeout; t > 0 {
				s.conn.SetWriteDeadline(time.Now().Add(t))
			}
			bw.Flush()
			s.conn.Close()
			return
		}
		m := s.queue[0]
		s.queue = s.queue[1:]
		if m.T == wire.TypeWal || m.T == wire.TypeSnap {
			s.nwal--
		}
		if m.T == wire.TypeFiring {
			s.nfirings--
			if s.batch && len(s.queue) > 0 && s.queue[0].T == wire.TypeFiring {
				batch = append(batch[:0], *m.Firing)
				for len(s.queue) > 0 && s.queue[0].T == wire.TypeFiring && len(batch) < maxFiringBatch {
					batch = append(batch, *s.queue[0].Firing)
					s.queue = s.queue[1:]
					s.nfirings--
				}
				m = &wire.Msg{T: wire.TypeFiring, Firings: batch}
			}
		}
		more := len(s.queue) > 0
		s.mu.Unlock()
		if t := s.srv.cfg.WriteTimeout; t > 0 {
			s.conn.SetWriteDeadline(time.Now().Add(t))
		}
		if err := fw.Write(m); err != nil {
			s.fail(err)
			return
		}
		if !more {
			if err := bw.Flush(); err != nil {
				s.fail(err)
				return
			}
		}
	}
}
