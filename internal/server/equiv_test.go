package server

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// equivRules registers the rule set used by the equivalence tests on any
// rule sink (a client or a local engine wrapped in a closure).
var equivRules = []struct {
	name, cond string
}{
	{"hot", `item("a") > 80`},
	{"crossed", `item("a") > item("b")`},
	{"spike", `[x <- item("b")] lasttime (item("b") < x - 10)`},
}

// equivCodecs are the wire configurations the equivalence tests run
// under: the default offer (negotiates the binary codec) and a
// JSON-only offer. Both must yield byte-identical firing streams.
var equivCodecs = []struct {
	name   string
	codecs []string
	want   string // codec the server must pick
}{
	{"binary", nil, wire.CodecNameBinary},
	{"json", []string{wire.CodecNameJSON}, wire.CodecNameJSON},
}

// dialCodec dials with an explicit codec offer and checks the
// negotiated pick.
func dialCodec(t *testing.T, addr string, codecs []string, want string) *client.Client {
	t.Helper()
	c, err := client.DialOptions(addr, client.Options{Codecs: codecs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if c.Codec() != want {
		t.Fatalf("negotiated codec %q, want %q", c.Codec(), want)
	}
	return c
}

// TestRemoteEquivalence is the acceptance check of the service layer: N
// concurrent clients commit interleaved transactions against the server;
// replaying the merged commit order (by applied timestamp) on a local,
// single-process engine with the same rules must produce the identical
// firing stream — at Workers 1 and 4 and over both codecs, so the
// serializing pipeline and the codec-independent wire (not luck) are
// what preserve deterministic firing order.
func TestRemoteEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, codec := range equivCodecs {
			workers, codec := workers, codec
			t.Run(fmt.Sprintf("workers=%d/codec=%s", workers, codec.name), func(t *testing.T) {
				runRemoteEquivalence(t, workers, codec.codecs, codec.want)
			})
		}
	}
}

func runRemoteEquivalence(t *testing.T, workers int, codecs []string, wantCodec string) {
	initial := map[string]value.Value{
		"a": value.NewInt(0),
		"b": value.NewInt(50),
	}
	eng := adb.NewEngine(adb.Config{Initial: initial, Workers: workers})
	_, addr := startServer(t, Config{Engine: eng})

	admin := dialCodec(t, addr, codecs, wantCodec)
	for _, r := range equivRules {
		if err := admin.AddTrigger(r.name, r.cond); err != nil {
			t.Fatal(err)
		}
	}

	// N clients, interleaved auto-timestamped commits; each records
	// what it committed and the timestamp the server applied.
	type commit struct {
		ts      int64
		updates map[string]value.Value
	}
	const nclients, ncommits = 4, 30
	var mu sync.Mutex
	var all []commit
	var wg sync.WaitGroup
	errs := make(chan error, nclients)
	for ci := 0; ci < nclients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.DialOptions(addr, client.Options{Codecs: codecs})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < ncommits; i++ {
				updates := map[string]value.Value{
					"a": value.NewInt(int64((ci*31 + i*17) % 100)),
				}
				if i%3 == ci%3 {
					updates["b"] = value.NewInt(int64((ci*13 + i*29) % 100))
				}
				ts, err := c.Exec(0, updates)
				if err != nil {
					errs <- fmt.Errorf("client %d commit %d: %w", ci, i, err)
					return
				}
				mu.Lock()
				all = append(all, commit{ts: ts, updates: updates})
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The served firing stream, via a fresh subscriber.
	sub := dialCodec(t, addr, codecs, wantCodec)
	stream, err := sub.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	// Queries go through the admin session: the subscriber's read
	// loop is busy delivering the 120-firing backlog and must not be
	// asked to route a response mid-stream.
	nowTS, err := admin.Now()
	if err != nil {
		t.Fatal(err)
	}
	if nowTS != int64(nclients*ncommits) {
		t.Fatalf("server clock = %d, want %d", nowTS, nclients*ncommits)
	}
	served, err := admin.Firings(0)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the merged commit order on a single-process engine.
	sort.Slice(all, func(i, j int) bool { return all[i].ts < all[j].ts })
	for i := 1; i < len(all); i++ {
		if all[i].ts == all[i-1].ts {
			t.Fatalf("duplicate applied timestamp %d", all[i].ts)
		}
	}
	local := adb.NewEngine(adb.Config{Initial: initial, Workers: workers})
	for _, r := range equivRules {
		if err := local.AddTrigger(r.name, r.cond, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, cm := range all {
		if err := local.Exec(cm.ts, cm.updates); err != nil {
			t.Fatal(err)
		}
	}
	want := normFirings(local.Firings())
	served = normFirings(served)

	if len(served) != len(want) {
		t.Fatalf("served %d firings, local run has %d", len(served), len(want))
	}
	if !reflect.DeepEqual(served, want) {
		for i := range want {
			if !reflect.DeepEqual(served[i], want[i]) {
				t.Fatalf("firing %d differs:\nserved: %+v\nlocal:  %+v", i, served[i], want[i])
			}
		}
	}

	// The subscription stream carries the same firings, gap-free and
	// in order.
	for i, w := range want {
		select {
		case ev := <-stream.C:
			if ev.Gap != 0 {
				t.Fatalf("gap of %d at %d in an unloaded stream", ev.Gap, i)
			}
			if ev.Seq != i || !reflect.DeepEqual(normFiring(ev.Firing), w) {
				t.Fatalf("stream event %d = %+v, want seq %d %+v", i, ev, i, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stream stalled at firing %d of %d", i, len(want))
		}
	}
}

// normFiring canonicalizes the one representation difference the wire
// introduces: an empty binding decodes as nil (histio omits empty maps),
// while the engine may record an allocated empty map.
func normFiring(f adb.Firing) adb.Firing {
	if len(f.Binding) == 0 {
		f.Binding = nil
	}
	return f
}

func normFirings(fs []adb.Firing) []adb.Firing {
	out := make([]adb.Firing, len(fs))
	for i, f := range fs {
		out[i] = normFiring(f)
	}
	return out
}

// TestDegradedOverWire checks graceful degradation across the network: a
// WAL fault seals the engine, writes fail with ErrDegraded through the
// client, while queries answer and subscriptions keep draining the
// pre-degradation backlog.
func TestDegradedOverWire(t *testing.T) {
	dir := t.TempDir()
	eng, err := adb.Restore(adb.Config{
		Initial: map[string]value.Value{"a": value.NewInt(0)},
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, Config{Engine: eng})
	c := dial(t, addr)
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(1, map[string]value.Value{"a": value.NewInt(9)}); err != nil {
		t.Fatal(err)
	}

	// Fault the WAL: the next write attempt seals the engine.
	eng.SetWALFailpoint(func(op string, lsn int64) error {
		return errors.New("injected disk failure")
	})
	_, err = c.Exec(2, map[string]value.Value{"a": value.NewInt(11)})
	if !errors.Is(err, adb.ErrDegraded) {
		t.Fatalf("write on faulted engine: %v, want ErrDegraded", err)
	}
	// Every further write fails the same way.
	if _, err := c.Txn().Set("a", value.NewInt(12)).Commit(); !errors.Is(err, adb.ErrDegraded) {
		t.Fatalf("second write: %v, want ErrDegraded", err)
	}

	// Reads stay alive: health reports the seal, the db and firing log
	// still answer.
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Degraded == "" {
		t.Fatal("health does not report degradation")
	}
	db, err := c.DB()
	if err != nil {
		t.Fatal(err)
	}
	// The sealing commit applied in memory before its WAL append failed
	// (recovery will drop it); reads serve that state, matching the
	// engine's in-process degradation semantics.
	if db["a"].AsInt() != 11 {
		t.Fatalf("db a = %v after degradation", db["a"])
	}

	// Subscriptions keep draining: a fresh subscriber still receives the
	// pre-degradation backlog.
	sub := dial(t, addr)
	stream, err := sub.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-stream.C:
		if ev.Firing.Rule != "hot" || ev.Firing.Time != 1 {
			t.Fatalf("backlog firing = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backlog never drained on the degraded engine")
	}

	// Graceful drain still works on a degraded engine (Close surfaces the
	// seal to the server log, not to Shutdown): the startServer cleanup
	// exercises it.
}

// TestCrossCodecStreams subscribes two clients — one negotiating the
// binary codec, one pinned to JSON — to the same server and checks they
// observe the identical firing stream: same firings, same sequence
// numbers, no gaps. The binary subscriber additionally receives batched
// multi-firing frames (the backlog is delivered after the commits), so
// this also proves batching changes framing, never content.
func TestCrossCodecStreams(t *testing.T) {
	initial := map[string]value.Value{"a": value.NewInt(0), "b": value.NewInt(50)}
	eng := adb.NewEngine(adb.Config{Initial: initial})
	_, addr := startServer(t, Config{Engine: eng})

	admin := dial(t, addr)
	for _, r := range equivRules {
		if err := admin.AddTrigger(r.name, r.cond); err != nil {
			t.Fatal(err)
		}
	}
	// Build a firing backlog first so both subscribers drain it via
	// batched (binary peer) and frame-per-firing (JSON peer negotiated
	// batching too, but content must match regardless) delivery.
	const ncommits = 50
	for i := 0; i < ncommits; i++ {
		updates := map[string]value.Value{"a": value.NewInt(int64((i * 37) % 100))}
		if i%2 == 0 {
			updates["b"] = value.NewInt(int64((i * 53) % 100))
		}
		if _, err := admin.Exec(0, updates); err != nil {
			t.Fatal(err)
		}
	}

	bin := dialCodec(t, addr, nil, wire.CodecNameBinary)
	js := dialCodec(t, addr, []string{wire.CodecNameJSON}, wire.CodecNameJSON)
	binStream, err := bin.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	jsStream, err := js.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}

	want, err := admin.Firings(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no firings generated")
	}
	collect := func(name string, ch <-chan client.StreamEvent) []adb.Firing {
		var got []adb.Firing
		for len(got) < len(want) {
			select {
			case ev := <-ch:
				if ev.Gap != 0 {
					t.Fatalf("%s: gap of %d in an unloaded stream", name, ev.Gap)
				}
				if ev.Seq != len(got) {
					t.Fatalf("%s: seq %d, want %d", name, ev.Seq, len(got))
				}
				got = append(got, normFiring(ev.Firing))
			case <-time.After(5 * time.Second):
				t.Fatalf("%s: stream stalled at %d of %d", name, len(got), len(want))
			}
		}
		return got
	}
	gotBin := collect("binary", binStream.C)
	gotJSON := collect("json", jsStream.C)
	if !reflect.DeepEqual(gotBin, gotJSON) {
		t.Fatal("binary and JSON subscribers diverged")
	}
	if !reflect.DeepEqual(gotBin, normFirings(want)) {
		t.Fatal("streamed firings differ from the queried log")
	}
}
