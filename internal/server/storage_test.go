package server

import (
	"testing"

	"ptlactive/internal/adb"
	"ptlactive/internal/value"
)

// TestStorageQuery: the "storage" query reports the backend's storage
// footprint over the wire — segment and snapshot accounting for a
// durable engine, the history window when one is configured — and a
// memory engine answers with zero persistence fields rather than an
// error (its backend still implements the capability).
func TestStorageQuery(t *testing.T) {
	dir := t.TempDir()
	eng, err := adb.Restore(adb.Config{
		Initial:    map[string]value.Value{"a": value.NewInt(0)},
		TrackItems: []string{"a"},
		Durability: adb.DurabilityWAL,
		NoFsync:    true,
		Retention:  adb.Retention{HistoryWindow: 5, SpillHistory: true},
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, Config{Engine: eng})
	c := dial(t, addr)
	for ts := int64(1); ts <= 20; ts++ {
		if _, err := c.Exec(ts, map[string]value.Value{"a": value.NewInt(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Storage()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments == 0 || st.WALBytes == 0 || st.LastLSN == 0 {
		t.Fatalf("durable engine reported empty storage: %+v", st)
	}
	if st.HistoryWindow != 5 || st.HistoryFloor != 15 || !st.SpillHistory {
		t.Fatalf("history window not surfaced: %+v", st)
	}
	if st.TierRows == 0 {
		t.Fatalf("spilled rows not counted: %+v", st)
	}
}

func TestStorageQueryMemoryEngine(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	st, err := c.Storage()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 || st.WALBytes != 0 || st.HistoryWindow != 0 {
		t.Fatalf("memory engine reported persistence state: %+v", st)
	}
}
