package server

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// startServer runs a server around a fresh engine (or cfg.Engine) on a
// loopback listener and tears it down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = adb.NewEngine(adb.Config{
			Initial: map[string]value.Value{"a": value.NewInt(0)},
		})
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEndToEnd(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	if ts, err := c.Exec(1, map[string]value.Value{"a": value.NewInt(3)}); err != nil || ts != 1 {
		t.Fatalf("exec: ts=%d err=%v", ts, err)
	}
	if ts, err := c.Exec(2, map[string]value.Value{"a": value.NewInt(7)}); err != nil || ts != 2 {
		t.Fatalf("exec: ts=%d err=%v", ts, err)
	}
	fs, err := c.Firings(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "hot" || fs[0].Time != 2 {
		t.Fatalf("firings = %+v", fs)
	}
	db, err := c.DB()
	if err != nil {
		t.Fatal(err)
	}
	if v := db["a"]; v.AsInt() != 7 {
		t.Fatalf("db a = %v", v)
	}
	rules, err := c.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Name != "hot" || rules[0].Constraint {
		t.Fatalf("rules = %+v", rules)
	}
	now, err := c.Now()
	if err != nil || now != 2 {
		t.Fatalf("now = %d, %v", now, err)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Degraded != "" {
		t.Fatalf("healthy engine reported degraded: %q", h.Degraded)
	}
}

func TestAutoTimestamp(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	ts1, err := c.Exec(0, map[string]value.Value{"a": value.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := c.Txn().Set("a", value.NewInt(2)).Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ts1 <= 0 || ts2 <= ts1 {
		t.Fatalf("server-assigned timestamps not increasing: %d, %d", ts1, ts2)
	}
}

func TestConstraintOverWire(t *testing.T) {
	eng := adb.NewEngine(adb.Config{Initial: map[string]value.Value{"a": value.NewInt(5)}})
	_, addr := startServer(t, Config{Engine: eng})
	c := dial(t, addr)
	err := c.AddConstraint("monotone", `[x <- item("a")] not previously (item("a") > x)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(1, map[string]value.Value{"a": value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Exec(2, map[string]value.Value{"a": value.NewInt(6)})
	if err == nil {
		t.Fatal("decreasing commit should abort over the wire")
	}
	var ce *adb.ConstraintError
	if !errors.As(err, &ce) || ce.Constraint != "monotone" {
		t.Fatalf("error = %v (%T)", err, err)
	}
	if !errors.Is(err, adb.ErrConstraintViolation) {
		t.Fatalf("errors.Is(ErrConstraintViolation) should hold: %v", err)
	}
	db, err := c.DB()
	if err != nil {
		t.Fatal(err)
	}
	if db["a"].AsInt() != 7 {
		t.Fatalf("aborted txn corrupted db: %v", db["a"])
	}
}

func TestVersionMismatchRefused(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bad := &wire.Msg{T: wire.TypeHello, Proto: wire.ProtoName, Version: wire.Version + 1}
	if err := wire.WriteFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if m.T != wire.TypeError || m.Code != wire.CodeVersion {
		t.Fatalf("reply = %+v", m)
	}
	if _, err := wire.ReadFrame(conn); err != io.EOF {
		t.Fatalf("connection should be closed after refusal, got %v", err)
	}
}

func TestMaxConns(t *testing.T) {
	_, addr := startServer(t, Config{MaxConns: 1})
	c1 := dial(t, addr)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	_, err := client.Dial(addr)
	if err == nil {
		t.Fatal("second connection should be refused at MaxConns=1")
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBusy {
		t.Fatalf("refusal error = %v", err)
	}
	// Dropping the first session frees the slot.
	c1.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		c2, err := client.Dial(addr)
		if err == nil {
			c2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestIdleTimeout(t *testing.T) {
	_, addr := startServer(t, Config{IdleTimeout: 50 * time.Millisecond})
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Stop talking; the server must drop the session.
	deadline := time.Now().Add(3 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSubscribeBacklogAndLive(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(1, map[string]value.Value{"a": value.NewInt(9)}); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	// Backlog firing (ts 1) arrives first.
	ev := <-sub.C
	if ev.Gap != 0 || ev.Firing.Rule != "hot" || ev.Firing.Time != 1 || ev.Seq != 0 {
		t.Fatalf("backlog event = %+v", ev)
	}
	// A second session commits; the live firing is pushed.
	c2 := dial(t, addr)
	if _, err := c2.Exec(2, map[string]value.Value{"a": value.NewInt(11)}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev = <-sub.C:
	case <-time.After(3 * time.Second):
		t.Fatal("live firing never arrived")
	}
	if ev.Firing.Time != 2 || ev.Seq != 1 {
		t.Fatalf("live event = %+v", ev)
	}
}

// pipeServer wires a session directly over net.Pipe: the unbuffered pipe
// makes the server's writer block the moment the client stops reading, so
// overflow is deterministic.
func pipeServer(t *testing.T, cfg Config) (*Server, net.Conn) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = adb.NewEngine(adb.Config{
			Initial: map[string]value.Value{"a": value.NewInt(0)},
		})
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	cs, ss := net.Pipe()
	srv.ServeConn(ss)
	return srv, cs
}

// handshakeAndSubscribe drives the raw client side of a pipe connection
// up to an acknowledged subscription.
func handshakeAndSubscribe(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := wire.WriteFrame(conn, wire.Hello()); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.ReadFrame(conn); err != nil || m.T != wire.TypeHello {
		t.Fatalf("handshake: %+v, %v", m, err)
	}
	if err := wire.WriteFrame(conn, &wire.Msg{T: wire.TypeSubscribe, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.ReadFrame(conn); err != nil || m.T != wire.TypeOK {
		t.Fatalf("subscribe ack: %+v, %v", m, err)
	}
}

func TestOverflowDropWithGap(t *testing.T) {
	const q = 4
	eng := adb.NewEngine(adb.Config{Initial: map[string]value.Value{"a": value.NewInt(0)}})
	if err := eng.AddTrigger("every", `item("a") > 0`, nil); err != nil {
		t.Fatal(err)
	}
	_, conn := pipeServer(t, Config{
		Engine:          eng,
		SubscriberQueue: q,
		Overflow:        DropWithGap,
		WriteTimeout:    30 * time.Second,
	})
	handshakeAndSubscribe(t, conn)
	// The writer blocks on the first firing frame (net.Pipe is unbuffered
	// and we are not reading); at most q more queue behind it; the rest
	// drop into the pending gap.
	const total = q + 1 + 3
	for i := 1; i <= total; i++ {
		if err := eng.ExecTxn(int64(i), map[string]value.Value{"a": value.NewInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the delivered prefix: a consecutive run of firings from seq 0
	// (how many got queued before overflow depends on writer timing, but
	// it is at most the in-flight frame plus q queued ones).
	got := 0
	for {
		conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		m, err := wire.ReadFrame(conn)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				break // queue drained; remaining firings were dropped
			}
			t.Fatal(err)
		}
		if m.T != wire.TypeFiring || m.Firing.Seq != got {
			t.Fatalf("frame %d = %+v, want firing seq %d", got, m, got)
		}
		got++
	}
	if got < 1 || got > q+1 {
		t.Fatalf("delivered %d firings before overflow, want 1..%d", got, q+1)
	}
	if got >= total {
		t.Fatal("nothing was dropped; the queue bound did not engage")
	}
	// The next commit flushes the pending gap marker ahead of its firing:
	// the marker sits exactly where the missing firings would have been.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := eng.ExecTxn(total+1, map[string]value.Value{"a": value.NewInt(total + 1)}, nil); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if m.T != wire.TypeGap || m.Missed != total-got {
		t.Fatalf("gap frame = %+v, want gap of %d", m, total-got)
	}
	m, err = wire.ReadFrame(conn)
	if err != nil || m.T != wire.TypeFiring || m.Firing.Seq != total {
		t.Fatalf("post-gap firing = %+v, %v", m, err)
	}
}

func TestOverflowDisconnect(t *testing.T) {
	const q = 2
	eng := adb.NewEngine(adb.Config{Initial: map[string]value.Value{"a": value.NewInt(0)}})
	if err := eng.AddTrigger("every", `item("a") > 0`, nil); err != nil {
		t.Fatal(err)
	}
	_, conn := pipeServer(t, Config{
		Engine:          eng,
		SubscriberQueue: q,
		Overflow:        Disconnect,
		WriteTimeout:    30 * time.Second,
	})
	handshakeAndSubscribe(t, conn)
	for i := 1; i <= q+2; i++ {
		if err := eng.ExecTxn(int64(i), map[string]value.Value{"a": value.NewInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The lagging subscriber was cut: reading eventually hits EOF (the
	// frames already in flight may still arrive first).
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	for {
		if _, err := wire.ReadFrame(conn); err != nil {
			return // closed — the disconnect policy shed the laggard
		}
	}
}

func TestGracefulDrainFlushesSubscribers(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dial(t, addr)
	if err := c.AddTrigger("hot", `item("a") > 5`, adb.Relevant); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := c.Exec(int64(i), map[string]value.Value{"a": value.NewInt(int64(5 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Every firing committed before the drain must have been flushed to
	// the subscriber, then the channel closes.
	var times []int64
	for ev := range sub.C {
		if ev.Gap != 0 {
			t.Fatalf("unexpected gap during drain: %+v", ev)
		}
		times = append(times, ev.Firing.Time)
	}
	if len(times) != 3 || times[0] != 1 || times[2] != 3 {
		t.Fatalf("drained firings at %v, want [1 2 3]", times)
	}
	if err := c.Err(); !errors.Is(err, wire.ErrSessionClosed) {
		t.Fatalf("session end cause = %v", err)
	}
	// New mutations are refused once the server is down.
	if _, err := client.Dial(addr); err == nil {
		t.Fatal("dial after shutdown should fail")
	}
}

// TestClientStatsGapFirings checks the client's delivery counters: a
// subscriber that stops draining overflows the server's bounded queue,
// and after catching up its Stats must account for every firing the gap
// markers reported lost.
func TestClientStatsGapFirings(t *testing.T) {
	eng := adb.NewEngine(adb.Config{Initial: map[string]value.Value{"a": value.NewInt(0)}})
	if err := eng.AddTrigger("every", `item("a") > 0`, nil); err != nil {
		t.Fatal(err)
	}
	_, conn := pipeServer(t, Config{
		Engine:          eng,
		SubscriberQueue: 2,
		Overflow:        DropWithGap,
		WriteTimeout:    30 * time.Second,
	})
	c, err := client.New(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody drains sub.C: its 16-slot buffer fills, the read loop blocks,
	// the pipe (unbuffered) blocks the server's writer, the 2-slot queue
	// fills, and the rest of the commits drop into a pending gap.
	const total = 30
	for i := 1; i <= total; i++ {
		if err := eng.ExecTxn(int64(i), map[string]value.Value{"a": value.NewInt(int64(i))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	fires, gapSum := 0, 0
	take := func(timeout time.Duration) bool {
		select {
		case ev := <-sub.C:
			if ev.Gap > 0 {
				gapSum += ev.Gap
			} else {
				fires++
			}
			return true
		case <-time.After(timeout):
			return false
		}
	}
	for take(300 * time.Millisecond) {
	}
	// The pending gap marker flushes ahead of the next delivered firing.
	if err := eng.ExecTxn(total+1, map[string]value.Value{"a": value.NewInt(total + 1)}, nil); err != nil {
		t.Fatal(err)
	}
	for fires+gapSum < total+1 {
		if !take(5 * time.Second) {
			t.Fatalf("stream stalled: %d firings + %d gap-lost of %d", fires, gapSum, total+1)
		}
	}
	if gapSum == 0 {
		t.Fatal("queue bound never engaged; no gaps to account for")
	}
	st := c.Stats()
	if st.GapFirings != gapSum {
		t.Fatalf("Stats().GapFirings = %d, want %d (the sum of in-band gap markers)", st.GapFirings, gapSum)
	}
	if st.DroppedPushes != 0 {
		t.Fatalf("Stats().DroppedPushes = %d on a session with a live subscription", st.DroppedPushes)
	}
	if st.Codec != c.Codec() {
		t.Fatalf("Stats().Codec = %q, want %q", st.Codec, c.Codec())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	srv, _ := startServer(t, Config{})
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
