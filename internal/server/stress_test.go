package server

import (
	"fmt"
	"sync"
	"testing"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/value"
)

// TestClientSharedConcurrent is the regression test for the
// concurrent-client frame-corruption bug: N goroutines commit through
// ONE shared Client. Before the client serialized its frame writes
// behind a mutex, two goroutines could interleave length-prefixed
// frames mid-write and corrupt the stream (the server would see a torn
// frame and kill the session). With the write lock, every commit must
// land and the server clock must equal the total commit count. Run
// under -race — the unsynchronized wire.WriteFrame path is also a data
// race on the shared connection buffer.
func TestClientSharedConcurrent(t *testing.T) {
	for _, codec := range equivCodecs {
		t.Run("codec="+codec.name, func(t *testing.T) {
			eng := adb.NewEngine(adb.Config{
				Initial: map[string]value.Value{"a": value.NewInt(0), "b": value.NewInt(0)},
			})
			_, addr := startServer(t, Config{Engine: eng})
			c := dialCodec(t, addr, codec.codecs, codec.want)

			const goroutines, commits = 8, 50
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < commits; i++ {
						key := "a"
						if g%2 == 1 {
							key = "b"
						}
						_, err := c.Exec(0, map[string]value.Value{
							key: value.NewInt(int64(g*1000 + i)),
						})
						if err != nil {
							errs <- fmt.Errorf("goroutine %d commit %d: %w", g, i, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			now, err := c.Now()
			if err != nil {
				t.Fatal(err)
			}
			if now != int64(goroutines*commits) {
				t.Fatalf("server clock = %d, want %d (lost commits on a shared client)", now, goroutines*commits)
			}
		})
	}
}

// TestClientPipelined drives the pipelined commit API: a window of
// transactions in flight on one connection, responses matched by frame
// id. Every commit must be acknowledged with a distinct timestamp, and
// the final clock must count them all — ordering within the window is
// the server's (arrival order), but nothing may be lost or cross-wired.
func TestClientPipelined(t *testing.T) {
	for _, codec := range equivCodecs {
		t.Run("codec="+codec.name, func(t *testing.T) {
			eng := adb.NewEngine(adb.Config{
				Initial: map[string]value.Value{"a": value.NewInt(0)},
			})
			_, addr := startServer(t, Config{Engine: eng})
			c := dialCodec(t, addr, codec.codecs, codec.want)

			const total, window = 200, 64
			seen := make(map[int64]bool, total)
			pending := make([]*client.Pending, 0, window)
			flush := func() {
				for _, p := range pending {
					ts, err := p.Wait()
					if err != nil {
						t.Fatal(err)
					}
					if seen[ts] {
						t.Fatalf("timestamp %d acknowledged twice", ts)
					}
					seen[ts] = true
				}
				pending = pending[:0]
			}
			for i := 0; i < total; i++ {
				p := c.Txn().Set("a", value.NewInt(int64(i))).Go()
				pending = append(pending, p)
				if len(pending) == window {
					flush()
				}
			}
			flush()
			if len(seen) != total {
				t.Fatalf("%d distinct timestamps, want %d", len(seen), total)
			}
			now, err := c.Now()
			if err != nil {
				t.Fatal(err)
			}
			if now != int64(total) {
				t.Fatalf("server clock = %d, want %d", now, total)
			}
		})
	}
}

// TestClientPipelinedConcurrent mixes both: several goroutines each
// pipelining through the same shared client, under -race. This is the
// worst case for the write path (interleaved pipelined frames) and for
// the response router (many outstanding ids).
func TestClientPipelinedConcurrent(t *testing.T) {
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{"a": value.NewInt(0)},
	})
	_, addr := startServer(t, Config{Engine: eng})
	c := dial(t, addr)

	const goroutines, commits = 4, 100
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pending := make([]*client.Pending, 0, commits)
			for i := 0; i < commits; i++ {
				pending = append(pending, c.Txn().Set("a", value.NewInt(int64(g*commits+i))).Go())
			}
			for i, p := range pending {
				if _, err := p.Wait(); err != nil {
					errs <- fmt.Errorf("goroutine %d commit %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	now, err := c.Now()
	if err != nil {
		t.Fatal(err)
	}
	if now != int64(goroutines*commits) {
		t.Fatalf("server clock = %d, want %d", now, goroutines*commits)
	}
}
