// Package server is the network service layer of the active database: a
// TCP server speaking the length-prefixed, versioned protocol of
// internal/server/wire, over which clients open sessions, run batched
// transactions, register and revive rules, query state and health, and
// subscribe to rule firings pushed asynchronously.
//
// One adb.Engine sits behind a serializing commit pipeline: every
// mutating request — transactions, emits, rule registration, revival,
// subscription starts — executes on a single goroutine, so the engine's
// deterministic firing order is preserved and the firing stream every
// subscriber observes is exactly the stream a single-process engine
// produces for the same commit order. Read-only queries bypass the
// pipeline (the engine's reader accessors are safe concurrently), which
// keeps reads and subscriptions alive while writes are refused on a
// degraded engine — graceful degradation over the wire.
//
// Subscribers have bounded per-session queues with an explicit overflow
// policy: DropWithGap drops firings and delivers a gap marker in their
// place, Disconnect drops the lagging connection with ErrSubscriberLagged.
// Sessions that negotiated a frame codec at handshake (wire/codec.go) get
// batched delivery: consecutive queued firings coalesce into one
// multi-firing frame per write, amortizing encode and syscall cost under
// fan-out load. Shutdown drains gracefully: stop accepting, finish queued
// mutations, flush subscriber queues, send bye frames, close the engine.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/histio"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// OverflowPolicy selects what happens to a subscriber whose bounded
// firing queue is full when the next firing arrives.
type OverflowPolicy int

const (
	// DropWithGap drops the firing and delivers a gap marker (the count of
	// dropped firings) in its place once the queue has room again: the
	// subscriber keeps its connection and knows exactly how much it missed.
	DropWithGap OverflowPolicy = iota
	// Disconnect closes the lagging subscriber's connection with
	// ErrSubscriberLagged: the subscriber never observes a silently
	// incomplete stream.
	Disconnect
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Server.
type Config struct {
	// Engine is the active database to serve. Required; the server becomes
	// its only mutator.
	Engine *adb.Engine
	// MaxConns bounds concurrent sessions (default 64); connections beyond
	// it are refused with a busy error frame.
	MaxConns int
	// IdleTimeout is the per-session read deadline between frames; a
	// session idle longer is closed. 0 means no deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write (default 10s), so a
	// peer that stops reading cannot stall broadcast or drain.
	WriteTimeout time.Duration
	// SubscriberQueue bounds each subscriber's firing queue (default 256).
	SubscriberQueue int
	// Overflow selects the policy when a subscriber's queue is full.
	Overflow OverflowPolicy
	// Logf, when set, receives server diagnostics.
	Logf func(format string, args ...any)
}

// Server serves one engine over the wire protocol.
type Server struct {
	cfg Config
	eng *adb.Engine

	// ops is the serializing commit pipeline: all engine mutations execute
	// on the goroutine draining it, in submission order.
	ops chan func()
	// seq is the next firing's absolute index; touched only on the
	// pipeline goroutine (the engine observer runs inside pipeline ops).
	seq int

	quit      chan struct{} // closed when Shutdown begins
	quitOnce  sync.Once
	pipeDone  chan struct{}
	cancelObs func()

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	wg       sync.WaitGroup // session goroutines
	shutdown bool

	// nsubs counts live subscribed sessions; broadcast consults it to skip
	// firing encode entirely when nobody is listening (the common case for
	// write-heavy workloads, where the encode would otherwise sit on the
	// serializing pipeline goroutine's critical path).
	nsubs atomic.Int64
}

// New creates a server around cfg.Engine and starts its commit pipeline.
// The engine must not be mutated by anyone else from here on.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Config.Engine is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.SubscriberQueue <= 0 {
		cfg.SubscriberQueue = 256
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		ops:      make(chan func(), 256),
		quit:     make(chan struct{}),
		pipeDone: make(chan struct{}),
		sessions: map[*session]struct{}{},
	}
	s.seq = len(s.eng.Firings())
	s.cancelObs = s.eng.OnFiring(s.broadcast)
	go s.pipeline()
	return s, nil
}

// pipeline is the single mutator goroutine; ops run in submission order
// until Shutdown closes the channel (after every session is gone).
func (s *Server) pipeline() {
	defer close(s.pipeDone)
	for fn := range s.ops {
		fn()
	}
}

// broadcast delivers one firing to every subscribed session; it runs on
// the pipeline goroutine, inside the engine call that produced the firing,
// so subscribers observe firings in exactly the engine's order.
func (s *Server) broadcast(f adb.Firing) {
	seq := s.seq
	s.seq++
	// No subscribers: the sequence number still advances (it is the firing
	// log index), but the encode and session walk are skipped. This runs on
	// the pipeline goroutine, so every microsecond here is serial with the
	// commits themselves.
	if s.nsubs.Load() == 0 {
		return
	}
	fj, err := wire.EncodeFiring(f, seq)
	s.mu.Lock()
	targets := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		targets = append(targets, sess)
	}
	s.mu.Unlock()
	for _, sess := range targets {
		if err != nil {
			// The firing cannot cross the wire; the subscriber learns it
			// missed one instead of silently losing it.
			sess.dropGap(1)
			continue
		}
		sess.pushFiring(&fj)
	}
	if err != nil {
		s.cfg.Logf("server: firing %d not encodable: %v", seq, err)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown; it returns
// ErrServerClosed after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return ErrServerClosed
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.startSession(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ServeConn runs one already-established connection through the normal
// session lifecycle; tests and in-process transports use it directly.
func (s *Server) ServeConn(conn net.Conn) {
	s.startSession(conn)
}

func (s *Server) startSession(conn net.Conn) {
	s.mu.Lock()
	if s.shutdown || len(s.sessions) >= s.cfg.MaxConns {
		full := !s.shutdown
		s.mu.Unlock()
		code, msg := wire.CodeClosed, "server draining"
		if full {
			code, msg = wire.CodeBusy, fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns)
		}
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		wire.WriteFrame(conn, &wire.Msg{T: wire.TypeError, Code: code, Err: msg})
		conn.Close()
		return
	}
	sess := newSession(s, conn)
	s.sessions[sess] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runSession(sess)
}

func (s *Server) runSession(sess *session) {
	defer func() {
		sess.fail(wire.ErrSessionClosed)
		sess.mu.Lock()
		wasSubscribed := sess.subscribed
		sess.mu.Unlock()
		if wasSubscribed {
			s.nsubs.Add(-1)
		}
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.wg.Done()
	}()
	if err := s.handshake(sess); err != nil {
		return
	}
	go sess.writeLoop()
	s.readLoop(sess)
}

// handshake enforces the hello exchange before anything else; a version
// mismatch is answered with an error frame and the connection closed.
//
// Codec negotiation rides the hello: the client's offer (Msg.Codecs, in
// preference order) is answered with the server's pick — binary when the
// client speaks it, JSON otherwise — echoed in the reply's Codec field.
// The exchange itself is always JSON; both ends switch to the chosen
// codec for every frame after it. A legacy client sends no offer and
// gets no Codec back: the session stays JSON, frame-per-firing, exactly
// the v1 protocol.
func (s *Server) handshake(sess *session) error {
	sess.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.ReadFrame(sess.br)
	if err != nil {
		return err
	}
	if err := wire.CheckHello(m); err != nil {
		sess.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		wire.WriteFrame(sess.conn, &wire.Msg{
			T: wire.TypeError, ID: m.ID, Code: wire.CodeVersion, Err: err.Error(),
		})
		return err
	}
	reply := &wire.Msg{
		T: wire.TypeHello, ID: m.ID, Proto: wire.ProtoName, Version: wire.Version,
	}
	if len(m.Codecs) > 0 {
		sess.codec = wire.PickCodec(m.Codecs)
		// A codec offer also advertises batched-delivery support: the peer
		// postdates negotiation, whichever codec it ends up on.
		sess.batch = true
		reply.Codec = sess.codec.String()
	}
	sess.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	return wire.WriteFrame(sess.conn, reply)
}

// readLoop dispatches request frames until the connection dies or drain
// begins. Mutations go through the pipeline; queries are answered inline
// from the engine's concurrency-safe reader accessors.
func (s *Server) readLoop(sess *session) {
	for {
		if t := s.cfg.IdleTimeout; t > 0 {
			sess.conn.SetReadDeadline(time.Now().Add(t))
		} else {
			sess.conn.SetReadDeadline(time.Time{})
		}
		m, err := wire.ReadFrameC(sess.br, sess.codec)
		if err != nil {
			return
		}
		switch m.T {
		case wire.TypePing:
			sess.enqueue(&wire.Msg{T: wire.TypeOK, ID: m.ID})
		case wire.TypeBye:
			// Client-initiated close: flush what is queued and finish.
			sess.beginDrain()
			return
		case wire.TypeQuery:
			s.handleQuery(sess, m)
		case wire.TypeTxn, wire.TypeEmit:
			s.dispatchTxn(sess, m)
		case wire.TypeRule:
			m := m
			s.submit(sess, m.ID, func() {
				var err error
				opt := adb.WithScheduling(adb.Scheduling(m.Sched))
				if m.Constraint {
					err = s.eng.AddConstraint(m.Name, m.Cond, opt)
				} else {
					err = s.eng.AddTrigger(m.Name, m.Cond, nil, opt)
				}
				sess.enqueue(reply(m.ID, 0, err))
			})
		case wire.TypeRevive:
			m := m
			s.submit(sess, m.ID, func() {
				sess.enqueue(reply(m.ID, 0, s.eng.ReviveRule(m.Name)))
			})
		case wire.TypeSubscribe:
			m := m
			s.submit(sess, m.ID, func() { s.subscribe(sess, m) })
		default:
			sess.enqueue(&wire.Msg{
				T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest,
				Err: fmt.Sprintf("unknown frame type %q", m.T),
			})
		}
	}
}

// dispatchTxn decodes a transaction (or emit) on the reader goroutine —
// malformed payloads are rejected before they reach the pipeline — and
// submits the commit.
func (s *Server) dispatchTxn(sess *session, m *wire.Msg) {
	updates, err := histio.DecodeItems(m.Updates)
	if err != nil {
		sess.enqueue(&wire.Msg{T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest, Err: err.Error()})
		return
	}
	events, err := histio.DecodeEvents(m.Events)
	if err != nil {
		sess.enqueue(&wire.Msg{T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest, Err: err.Error()})
		return
	}
	id, emit, ts, deletes := m.ID, m.T == wire.TypeEmit, m.TS, m.Deletes
	s.submit(sess, id, func() {
		// Timestamp 0 asks the server to assign the next tick; the commit
		// pipeline is the only mutator, so now+1 is race-free and strictly
		// increasing in pipeline order.
		if ts == 0 {
			ts = s.eng.Now() + 1
		}
		var err error
		if emit {
			err = s.eng.Emit(ts, events...)
		} else {
			err = s.eng.ExecTxn(ts, updates, deletes, events...)
		}
		sess.enqueue(reply(id, ts, err))
	})
}

// reply builds the response frame for a mutation outcome; engine errors
// are mapped onto the wire error taxonomy, constraint violations carrying
// their constraint name and transaction id.
func reply(id uint64, ts int64, err error) *wire.Msg {
	if err == nil {
		return &wire.Msg{T: wire.TypeOK, ID: id, TS: ts}
	}
	out := &wire.Msg{T: wire.TypeError, ID: id, TS: ts, Code: wire.CodeFor(err), Err: err.Error()}
	var ce *adb.ConstraintError
	if errors.As(err, &ce) {
		out.Name = ce.Constraint
		out.Txn = ce.Txn
	}
	return out
}

// submit places fn on the commit pipeline; after drain begins the request
// is refused with the closed error so clients see ErrSessionClosed rather
// than a hang.
func (s *Server) submit(sess *session, id uint64, fn func()) {
	select {
	case <-s.quit:
		sess.enqueue(&wire.Msg{T: wire.TypeError, ID: id, Code: wire.CodeClosed, Err: "server draining"})
	case s.ops <- fn:
	}
}

// subscribe runs on the pipeline goroutine: the backlog snapshot and the
// live registration are atomic with respect to commits, so the subscriber
// sees every firing exactly once (modulo its own queue's overflow policy).
func (s *Server) subscribe(sess *session, m *wire.Msg) {
	fs := s.eng.Firings()
	from := m.From
	if from < 0 {
		from = 0
	}
	if from > len(fs) {
		from = len(fs)
	}
	sess.mu.Lock()
	if sess.subscribed {
		sess.mu.Unlock()
		sess.enqueue(&wire.Msg{T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest, Err: "already subscribed"})
		return
	}
	sess.subscribed = true
	s.nsubs.Add(1)
	sess.queue = append(sess.queue, &wire.Msg{T: wire.TypeOK, ID: m.ID, From: from})
	for i := from; i < len(fs); i++ {
		fj, err := wire.EncodeFiring(fs[i], i)
		if err != nil {
			sess.gap++
			continue
		}
		sess.pushFiringLocked(&fj)
	}
	sess.cond.Broadcast()
	sess.mu.Unlock()
}

// handleQuery answers read-only requests inline; these never touch the
// pipeline, so they keep working while writes fail on a degraded engine.
func (s *Server) handleQuery(sess *session, m *wire.Msg) {
	out := &wire.Msg{T: wire.TypeOK, ID: m.ID}
	switch m.What {
	case "now":
		out.TS = s.eng.Now()
	case "db":
		db := s.eng.DB()
		items := map[string]value.Value{}
		for _, name := range db.Items() {
			v, _ := db.Get(name)
			items[name] = v
		}
		enc, err := histio.EncodeItems(items)
		if err != nil {
			sess.enqueue(&wire.Msg{T: wire.TypeError, ID: m.ID, Code: wire.CodeInternal, Err: err.Error()})
			return
		}
		out.Items = enc
	case "firings":
		fs := s.eng.Firings()
		from := m.From
		if from < 0 {
			from = 0
		}
		if from > len(fs) {
			from = len(fs)
		}
		out.Firings = make([]wire.FiringJSON, 0, len(fs)-from)
		for i := from; i < len(fs); i++ {
			fj, err := wire.EncodeFiring(fs[i], i)
			if err != nil {
				sess.enqueue(&wire.Msg{T: wire.TypeError, ID: m.ID, Code: wire.CodeInternal, Err: err.Error()})
				return
			}
			out.Firings = append(out.Firings, fj)
		}
	case "rules":
		for _, name := range s.eng.RuleNames() {
			info, ok := s.eng.Rule(name)
			if !ok {
				continue
			}
			out.Rules = append(out.Rules, wire.RuleJSON{
				Name:       info.Name,
				Condition:  info.Condition,
				Constraint: info.Constraint,
				Scheduling: int(info.Scheduling),
				Parameters: info.Parameters,
				Pending:    info.PendingStates,
			})
		}
	case "health":
		for _, name := range s.eng.RuleNames() {
			h, ok := s.eng.RuleHealth(name)
			if !ok {
				continue
			}
			hj := wire.HealthJSON{
				Rule:        h.Rule,
				Quarantined: h.Quarantined,
				Consecutive: h.ConsecutiveFailures,
				Total:       h.TotalFailures,
				LastAt:      h.LastFailureAt,
			}
			if h.LastError != nil {
				hj.LastError = h.LastError.Error()
			}
			out.Health = append(out.Health, hj)
		}
		if err := s.eng.Degraded(); err != nil {
			out.Degraded = err.Error()
		}
	default:
		sess.enqueue(&wire.Msg{
			T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest,
			Err: fmt.Sprintf("unknown query %q", m.What),
		})
		return
	}
	sess.enqueue(out)
}

// Shutdown drains the server gracefully: stop accepting, refuse new
// mutations, finish the queued ones, flush every subscriber queue (bye
// frame last), wait for the sessions to unwind and close the engine. The
// context bounds the wait; on expiry remaining connections are severed
// (their flushed prefix has still been delivered).
func (s *Server) Shutdown(ctx context.Context) error {
	s.quitOnce.Do(func() { close(s.quit) })
	s.mu.Lock()
	alreadyDown := s.shutdown
	s.shutdown = true
	ln := s.ln
	s.mu.Unlock()
	if alreadyDown {
		<-s.pipeDone
		return nil
	}
	if ln != nil {
		ln.Close()
	}
	// Barrier: every mutation submitted before the drain flag has executed
	// and its response is queued. Readers that lose the submit race get the
	// closed error instead of a hang.
	barrier := make(chan struct{})
	s.ops <- func() { close(barrier) }
	<-barrier
	// Flush: queued responses and subscribed firings go out, then bye.
	s.mu.Lock()
	for sess := range s.sessions {
		sess.beginDrain()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var ctxErr error
	select {
	case <-done:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		s.mu.Lock()
		for sess := range s.sessions {
			sess.fail(wire.ErrSessionClosed)
		}
		s.mu.Unlock()
		<-done
	}
	// No session goroutines remain, so nothing can submit: stop the
	// pipeline and release the engine.
	s.cancelObs()
	close(s.ops)
	<-s.pipeDone
	if err := s.eng.Close(); err != nil && ctxErr == nil {
		// A degraded engine surfaces its seal at Close; that is the
		// operator's signal, not a drain failure.
		s.cfg.Logf("server: engine close: %v", err)
	}
	return ctxErr
}
