// Package server is the network service layer of the active database: a
// TCP server speaking the length-prefixed, versioned protocol of
// internal/server/wire, over which clients open sessions, run batched
// transactions, register and revive rules, query state and health, and
// subscribe to rule firings pushed asynchronously.
//
// The server fronts a Backend: one adb.Engine behind a serializing
// commit pipeline (EngineBackend), or a cluster of item-partitioned
// engines behind a router (internal/cluster). Every mutating request —
// transactions, emits, rule registration, revival, subscription starts —
// goes through the backend's serialization point, so the engine's
// deterministic firing order is preserved and the firing stream every
// subscriber observes is exactly the stream a single-process engine
// produces for the same commit order. Read-only queries bypass the
// pipeline (the backend's reader accessors are safe concurrently), which
// keeps reads and subscriptions alive while writes are refused on a
// degraded engine — graceful degradation over the wire.
//
// Subscribers have bounded per-session queues with an explicit overflow
// policy: DropWithGap drops firings and delivers a gap marker in their
// place, Disconnect drops the lagging connection with ErrSubscriberLagged.
// Sessions that negotiated a frame codec at handshake (wire/codec.go) get
// batched delivery: consecutive queued firings coalesce into one
// multi-firing frame per write, amortizing encode and syscall cost under
// fan-out load. Shutdown drains gracefully: stop accepting, finish queued
// mutations, flush subscriber queues, send bye frames, close the engine.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/histio"
	"ptlactive/internal/server/wire"
)

// OverflowPolicy selects what happens to a subscriber whose bounded
// firing queue is full when the next firing arrives.
type OverflowPolicy int

const (
	// DropWithGap drops the firing and delivers a gap marker (the count of
	// dropped firings) in its place once the queue has room again: the
	// subscriber keeps its connection and knows exactly how much it missed.
	DropWithGap OverflowPolicy = iota
	// Disconnect closes the lagging subscriber's connection with
	// ErrSubscriberLagged: the subscriber never observes a silently
	// incomplete stream.
	Disconnect
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("server: closed")

// WALBatch is one durable batch of byte-exact WAL frames offered to a
// replication follower: the frame bytes, the LSN range they span, and the
// primary epoch in force when the batch became durable. Data is owned by
// the receiver (the shipper copies out of the log's reused buffer).
type WALBatch struct {
	Data        []byte
	First, Last int64
	Epoch       int64
	// Snap marks a snapshot-bootstrap chunk: Data is a slice of raw
	// snapshot bytes covering LSN First (sent when the follower's resume
	// position fell behind the retained WAL head), and More reports that
	// further chunks of the same snapshot follow. The ordinary wal stream
	// resumes after the final chunk.
	Snap bool
	More bool
}

// StorageBackend is the optional backend capability behind the "storage"
// query: backends that own durable storage report their footprint (WAL
// segments, snapshot chain, retained-history window, cold tier). Memory
// backends simply do not implement it.
type StorageBackend interface {
	Storage() (wire.StorageJSON, error)
}

// WALSource is the replication feed a primary server exposes (see
// internal/replica): FollowWAL registers sink for every durable WAL batch
// from LSN `from` on — backlog first, then live flushes, gap-free. epoch
// is the follower's current epoch; a follower ahead of this primary is
// refused (it replicated from a newer primary). ack runs at the
// serialization point after validation, strictly before the first sink
// delivery, so a transport can order its acknowledgement ahead of the
// stream. Sink runs on the commit pipeline and must hand off quickly.
type WALSource interface {
	FollowWAL(from, epoch int64, ack func(), sink func(WALBatch)) (cancel func(), err error)
}

// RoleInfo answers the "role" query: what this node is ("primary",
// "follower", "standalone"), where the primary is (a hint, "" when
// unknown), and the node's replication epoch and last WAL LSN.
type RoleInfo struct {
	Role   string
	Leader string
	Epoch  int64
	LSN    int64
}

// Config configures a Server.
type Config struct {
	// Engine is the active database to serve; the server wraps it in an
	// EngineBackend and becomes its only mutator. Exactly one of Engine
	// and Backend must be set.
	Engine *adb.Engine
	// Backend, when set, is served instead of constructing an
	// EngineBackend — the cluster router plugs in here.
	Backend Backend
	// MaxConns bounds concurrent sessions (default 64); connections beyond
	// it are refused with a busy error frame.
	MaxConns int
	// IdleTimeout is the per-session read deadline between frames; a
	// session idle longer is closed. 0 means no deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write (default 10s), so a
	// peer that stops reading cannot stall broadcast or drain.
	WriteTimeout time.Duration
	// SubscriberQueue bounds each subscriber's firing queue (default 256).
	SubscriberQueue int
	// Overflow selects the policy when a subscriber's queue is full.
	Overflow OverflowPolicy
	// WALSource, when set, enables the replication endpoint: replicate
	// requests stream durable WAL batches to followers. Follower WAL
	// queues are bounded by SubscriberQueue; an overflowing follower is
	// disconnected (it redials and resumes by LSN).
	WALSource WALSource
	// RoleInfo, when set, answers the "role" query; nil reports a
	// standalone node.
	RoleInfo func() RoleInfo
	// Logf, when set, receives server diagnostics.
	Logf func(format string, args ...any)
}

// Server serves one backend over the wire protocol.
type Server struct {
	cfg Config
	be  Backend

	quit      chan struct{} // closed when Shutdown begins
	quitOnce  sync.Once
	closeDone chan struct{} // closed when Shutdown has released the backend
	cancelObs func()

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	wg       sync.WaitGroup // session goroutines
	shutdown bool

	// nsubs counts live subscribed sessions; broadcast consults it to skip
	// firing encode entirely when nobody is listening (the common case for
	// write-heavy workloads, where the encode would otherwise sit on the
	// serializing pipeline goroutine's critical path).
	nsubs atomic.Int64
}

// New creates a server around cfg.Engine (starting its commit pipeline)
// or cfg.Backend. The engine or backend must not be mutated by anyone
// else from here on; Shutdown closes it.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil && cfg.Backend == nil {
		return nil, fmt.Errorf("server: one of Config.Engine and Config.Backend is required")
	}
	if cfg.Engine != nil && cfg.Backend != nil {
		return nil, fmt.Errorf("server: Config.Engine and Config.Backend are mutually exclusive")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.SubscriberQueue <= 0 {
		cfg.SubscriberQueue = 256
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	be := cfg.Backend
	if be == nil {
		be = NewEngineBackend(cfg.Engine)
	}
	s := &Server{
		cfg:       cfg,
		be:        be,
		quit:      make(chan struct{}),
		closeDone: make(chan struct{}),
		sessions:  map[*session]struct{}{},
	}
	s.cancelObs = s.be.OnFiring(s.broadcast)
	return s, nil
}

// broadcast delivers one firing (or gap) to every subscribed session; it
// runs on the backend's firing-producing goroutine, inside the call that
// produced the firing, so subscribers observe firings in exactly the
// backend's order.
func (s *Server) broadcast(fe FiringEvent) {
	// No subscribers: the encode and session walk are skipped entirely.
	// This runs serial with the commits themselves, so every microsecond
	// here costs throughput.
	if s.nsubs.Load() == 0 {
		return
	}
	var fj wire.FiringJSON
	var err error
	if fe.Gap == 0 {
		fj, err = wire.EncodeFiring(fe.F, fe.Seq)
	}
	s.mu.Lock()
	targets := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		targets = append(targets, sess)
	}
	s.mu.Unlock()
	for _, sess := range targets {
		switch {
		case fe.Gap > 0:
			// An upstream gap (a sharded backend's shard subscription
			// overflowed): every subscriber learns how much it missed.
			sess.dropGap(fe.Gap)
		case err != nil:
			// The firing cannot cross the wire; the subscriber learns it
			// missed one instead of silently losing it.
			sess.dropGap(1)
		default:
			sess.pushFiring(&fj)
		}
	}
	if err != nil {
		s.cfg.Logf("server: firing %d not encodable: %v", fe.Seq, err)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown; it returns
// ErrServerClosed after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return ErrServerClosed
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.startSession(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ServeConn runs one already-established connection through the normal
// session lifecycle; tests and in-process transports use it directly.
func (s *Server) ServeConn(conn net.Conn) {
	s.startSession(conn)
}

func (s *Server) startSession(conn net.Conn) {
	s.mu.Lock()
	if s.shutdown || len(s.sessions) >= s.cfg.MaxConns {
		full := !s.shutdown
		s.mu.Unlock()
		code, msg := wire.CodeClosed, "server draining"
		if full {
			code, msg = wire.CodeBusy, fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns)
		}
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		wire.WriteFrame(conn, &wire.Msg{T: wire.TypeError, Code: code, Err: msg})
		conn.Close()
		return
	}
	sess := newSession(s, conn)
	s.sessions[sess] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runSession(sess)
}

func (s *Server) runSession(sess *session) {
	defer func() {
		// Detach a replication sink before teardown so the shipper stops
		// delivering to a dead session (cancel synchronizes with the
		// pipeline, so it must run without sess.mu held).
		if cancel := sess.takeCancelWAL(); cancel != nil {
			cancel()
		}
		sess.fail(wire.ErrSessionClosed)
		sess.mu.Lock()
		wasSubscribed := sess.subscribed
		sess.mu.Unlock()
		if wasSubscribed {
			s.nsubs.Add(-1)
		}
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.wg.Done()
	}()
	if err := s.handshake(sess); err != nil {
		return
	}
	go sess.writeLoop()
	s.readLoop(sess)
}

// handshake enforces the hello exchange before anything else; a version
// mismatch is answered with an error frame and the connection closed.
//
// Codec negotiation rides the hello: the client's offer (Msg.Codecs, in
// preference order) is answered with the server's pick — binary when the
// client speaks it, JSON otherwise — echoed in the reply's Codec field.
// The exchange itself is always JSON; both ends switch to the chosen
// codec for every frame after it. A legacy client sends no offer and
// gets no Codec back: the session stays JSON, frame-per-firing, exactly
// the v1 protocol.
func (s *Server) handshake(sess *session) error {
	sess.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.ReadFrame(sess.br)
	if err != nil {
		return err
	}
	if err := wire.CheckHello(m); err != nil {
		sess.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		wire.WriteFrame(sess.conn, &wire.Msg{
			T: wire.TypeError, ID: m.ID, Code: wire.CodeVersion, Err: err.Error(),
		})
		return err
	}
	reply := &wire.Msg{
		T: wire.TypeHello, ID: m.ID, Proto: wire.ProtoName, Version: wire.Version,
	}
	if len(m.Codecs) > 0 {
		sess.codec = wire.PickCodec(m.Codecs)
		// A codec offer also advertises batched-delivery support: the peer
		// postdates negotiation, whichever codec it ends up on.
		sess.batch = true
		reply.Codec = sess.codec.String()
	}
	sess.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	return wire.WriteFrame(sess.conn, reply)
}

// readLoop dispatches request frames until the connection dies or drain
// begins. Mutations go through the pipeline; queries are answered inline
// from the engine's concurrency-safe reader accessors.
func (s *Server) readLoop(sess *session) {
	for {
		if t := s.cfg.IdleTimeout; t > 0 {
			sess.conn.SetReadDeadline(time.Now().Add(t))
		} else {
			sess.conn.SetReadDeadline(time.Time{})
		}
		m, err := wire.ReadFrameC(sess.br, sess.codec)
		if err != nil {
			return
		}
		switch m.T {
		case wire.TypePing:
			sess.enqueue(&wire.Msg{T: wire.TypeOK, ID: m.ID})
		case wire.TypeBye:
			// Client-initiated close: flush what is queued and finish.
			sess.beginDrain()
			return
		case wire.TypeQuery:
			s.handleQuery(sess, m)
		case wire.TypeTxn, wire.TypeEmit:
			s.dispatchTxn(sess, m)
		case wire.TypeRule:
			if s.refuse(sess, m.ID) {
				continue
			}
			id := m.ID
			s.be.GoRule(m.Name, m.Cond, m.Constraint, m.Sched, func(err error) {
				sess.enqueue(reply(id, 0, err))
			})
		case wire.TypeRevive:
			if s.refuse(sess, m.ID) {
				continue
			}
			id := m.ID
			s.be.GoRevive(m.Name, func(err error) {
				sess.enqueue(reply(id, 0, err))
			})
		case wire.TypeSubscribe:
			if s.refuse(sess, m.ID) {
				continue
			}
			s.subscribe(sess, m)
		case wire.TypeReplicate:
			if s.refuse(sess, m.ID) {
				continue
			}
			s.handleReplicate(sess, m)
		default:
			sess.enqueue(&wire.Msg{
				T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest,
				Err: fmt.Sprintf("unknown frame type %q", m.T),
			})
		}
	}
}

// dispatchTxn decodes a transaction (or emit) on the reader goroutine —
// malformed payloads are rejected before they reach the pipeline — and
// submits the commit.
func (s *Server) dispatchTxn(sess *session, m *wire.Msg) {
	updates, err := histio.DecodeItems(m.Updates)
	if err != nil {
		sess.enqueue(&wire.Msg{T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest, Err: err.Error()})
		return
	}
	events, err := histio.DecodeEvents(m.Events)
	if err != nil {
		sess.enqueue(&wire.Msg{T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest, Err: err.Error()})
		return
	}
	if s.refuse(sess, m.ID) {
		return
	}
	id := m.ID
	done := func(ts int64, err error) { sess.enqueue(reply(id, ts, err)) }
	if m.T == wire.TypeEmit {
		s.be.GoEmit(m.TS, events, done)
	} else {
		s.be.GoTxn(m.TS, updates, m.Deletes, events, done)
	}
}

// handleReplicate turns the session into a replication stream: durable
// WAL batches are pushed as wal frames from the requested LSN on. The
// acknowledgement is enqueued from the source's serialization point,
// strictly before the first batch, so the follower sees ok then batches
// in order.
func (s *Server) handleReplicate(sess *session, m *wire.Msg) {
	if s.cfg.WALSource == nil {
		sess.enqueue(&wire.Msg{
			T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest,
			Err: "replication not enabled on this node",
		})
		return
	}
	sess.mu.Lock()
	already := sess.replicating
	sess.replicating = true
	sess.mu.Unlock()
	if already {
		sess.enqueue(&wire.Msg{
			T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest,
			Err: "session is already replicating",
		})
		return
	}
	id := m.ID
	cancel, err := s.cfg.WALSource.FollowWAL(m.Lsn, m.Epoch,
		func() { sess.enqueue(&wire.Msg{T: wire.TypeOK, ID: id}) },
		func(b WALBatch) {
			if b.Snap {
				sess.pushWAL(&wire.Msg{T: wire.TypeSnap, Lsn: b.First, Epoch: b.Epoch, Wal: b.Data, More: b.More})
				return
			}
			sess.pushWAL(&wire.Msg{T: wire.TypeWal, Lsn: b.First, Epoch: b.Epoch, Wal: b.Data})
		})
	if err != nil {
		sess.mu.Lock()
		sess.replicating = false
		sess.mu.Unlock()
		sess.enqueue(reply(id, 0, err))
		return
	}
	sess.setCancelWAL(cancel)
}

// reply builds the response frame for a mutation outcome; engine errors
// are mapped onto the wire error taxonomy, constraint violations carrying
// their constraint name and transaction id.
func reply(id uint64, ts int64, err error) *wire.Msg {
	if err == nil {
		return &wire.Msg{T: wire.TypeOK, ID: id, TS: ts}
	}
	out := &wire.Msg{T: wire.TypeError, ID: id, TS: ts, Code: wire.CodeFor(err), Err: err.Error()}
	var ce *adb.ConstraintError
	if errors.As(err, &ce) {
		out.Name = ce.Constraint
		out.Txn = ce.Txn
	}
	var npe *wire.NotPrimaryError
	if errors.As(err, &npe) {
		// The redirect hint rides the error frame so a client can redial
		// the primary without a separate role query.
		out.Leader = npe.Leader
	}
	return out
}

// refuse reports whether the server is draining; if so the request is
// answered with the closed error so clients see ErrSessionClosed rather
// than a hang.
func (s *Server) refuse(sess *session, id uint64) bool {
	select {
	case <-s.quit:
		sess.enqueue(&wire.Msg{T: wire.TypeError, ID: id, Code: wire.CodeClosed, Err: "server draining"})
		return true
	default:
		return false
	}
}

// subscribe registers the session on the firing stream. The registration
// closure runs at the backend's serialization point, atomically with
// respect to commits, so the subscriber sees every firing exactly once
// (modulo its own queue's overflow policy).
func (s *Server) subscribe(sess *session, m *wire.Msg) {
	id := m.ID
	s.be.SyncFirings(m.From, func(from int, backlog []FiringEvent) {
		sess.mu.Lock()
		if sess.subscribed {
			sess.mu.Unlock()
			sess.enqueue(&wire.Msg{T: wire.TypeError, ID: id, Code: wire.CodeBadRequest, Err: "already subscribed"})
			return
		}
		sess.subscribed = true
		s.nsubs.Add(1)
		sess.queue = append(sess.queue, &wire.Msg{T: wire.TypeOK, ID: id, From: from})
		for _, fe := range backlog {
			if fe.Gap > 0 {
				sess.gap += fe.Gap
				continue
			}
			fj, err := wire.EncodeFiring(fe.F, fe.Seq)
			if err != nil {
				sess.gap++
				continue
			}
			sess.pushFiringLocked(&fj)
		}
		sess.cond.Broadcast()
		sess.mu.Unlock()
	})
}

// handleQuery answers read-only requests inline; these never touch the
// pipeline, so they keep working while writes fail on a degraded engine.
func (s *Server) handleQuery(sess *session, m *wire.Msg) {
	internal := func(err error) {
		sess.enqueue(&wire.Msg{T: wire.TypeError, ID: m.ID, Code: wire.CodeInternal, Err: err.Error()})
	}
	out := &wire.Msg{T: wire.TypeOK, ID: m.ID}
	switch m.What {
	case "now":
		out.TS = s.be.Now()
	case "db":
		items, err := s.be.Items()
		if err != nil {
			internal(err)
			return
		}
		enc, err := histio.EncodeItems(items)
		if err != nil {
			internal(err)
			return
		}
		out.Items = enc
	case "firings":
		fes, err := s.be.Firings(m.From)
		if err != nil {
			internal(err)
			return
		}
		out.Firings = make([]wire.FiringJSON, 0, len(fes))
		for _, fe := range fes {
			if fe.Gap > 0 {
				// Firings lost upstream: the Seq jump makes the gap visible.
				continue
			}
			fj, err := wire.EncodeFiring(fe.F, fe.Seq)
			if err != nil {
				internal(err)
				return
			}
			out.Firings = append(out.Firings, fj)
		}
	case "rules":
		rules, err := s.be.Rules()
		if err != nil {
			internal(err)
			return
		}
		out.Rules = rules
	case "health":
		health, degraded, err := s.be.Health()
		if err != nil {
			internal(err)
			return
		}
		out.Health = health
		out.Degraded = degraded
	case "role":
		if s.cfg.RoleInfo != nil {
			ri := s.cfg.RoleInfo()
			out.Role, out.Leader, out.Epoch, out.Lsn = ri.Role, ri.Leader, ri.Epoch, ri.LSN
		} else {
			out.Role = "standalone"
		}
	case "storage":
		sb, ok := s.be.(StorageBackend)
		if !ok {
			sess.enqueue(&wire.Msg{
				T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest,
				Err: "storage stats not supported by this backend",
			})
			return
		}
		st, err := sb.Storage()
		if err != nil {
			internal(err)
			return
		}
		out.Storage = &st
	default:
		sess.enqueue(&wire.Msg{
			T: wire.TypeError, ID: m.ID, Code: wire.CodeBadRequest,
			Err: fmt.Sprintf("unknown query %q", m.What),
		})
		return
	}
	sess.enqueue(out)
}

// Shutdown drains the server gracefully: stop accepting, refuse new
// mutations, finish the queued ones, flush every subscriber queue (bye
// frame last), wait for the sessions to unwind and close the engine. The
// context bounds the wait; on expiry remaining connections are severed
// (their flushed prefix has still been delivered).
func (s *Server) Shutdown(ctx context.Context) error {
	s.quitOnce.Do(func() { close(s.quit) })
	s.mu.Lock()
	alreadyDown := s.shutdown
	s.shutdown = true
	ln := s.ln
	s.mu.Unlock()
	if alreadyDown {
		<-s.closeDone
		return nil
	}
	defer close(s.closeDone)
	if ln != nil {
		ln.Close()
	}
	// Barrier: every mutation submitted before the drain flag has executed
	// and its response is queued. Readers that lose the submit race get the
	// closed error instead of a hang.
	s.be.Barrier()
	// Flush: queued responses and subscribed firings go out, then bye.
	s.mu.Lock()
	for sess := range s.sessions {
		sess.beginDrain()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var ctxErr error
	select {
	case <-done:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		s.mu.Lock()
		for sess := range s.sessions {
			sess.fail(wire.ErrSessionClosed)
		}
		s.mu.Unlock()
		<-done
	}
	// No session goroutines remain, so nothing can submit: stop the
	// backend and release the engine(s).
	s.cancelObs()
	if err := s.be.Close(); err != nil && ctxErr == nil {
		// A degraded engine surfaces its seal at Close; that is the
		// operator's signal, not a drain failure.
		s.cfg.Logf("server: backend close: %v", err)
	}
	return ctxErr
}
