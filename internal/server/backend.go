package server

import (
	"sync"
	"sync/atomic"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// FiringEvent is one entry of a backend's absolute firing log: a firing
// together with its sequence number, or — when Gap is nonzero — a marker
// that Gap firings were lost upstream (a sharded backend whose shard
// subscription overflowed). Seq is the index of the firing itself; a gap
// entry's Seq is the index of the first lost firing, and the Gap entries
// consume Gap sequence numbers. A single-engine backend never produces
// gaps.
type FiringEvent struct {
	F   adb.Firing
	Seq int
	Gap int
}

// Backend is the execution target a Server fronts: one engine behind a
// serializing commit pipeline, or a cluster of them behind a router. The
// mutating methods are asynchronous — they enqueue the operation and
// invoke done with the outcome from the backend's serialization point —
// so a reader goroutine can keep dispatching pipelined requests while
// earlier ones commit. Operations submitted from one goroutine are
// applied in submission order (per shard, for a sharded backend).
//
// The read-only methods (Now, Items, Firings, Rules, Health) are safe for
// concurrent use and never block behind the mutation pipeline, so reads
// keep working while writes are refused on a degraded backend.
type Backend interface {
	// GoTxn applies a transaction at ts (0 = assign the next tick at the
	// serialization point) and calls done with the applied timestamp and
	// outcome.
	GoTxn(ts int64, updates map[string]value.Value, deletes []string,
		events []event.Event, done func(ts int64, err error))
	// GoEmit appends an event-only state, like GoTxn.
	GoEmit(ts int64, events []event.Event, done func(ts int64, err error))
	// GoRule registers a trigger (or constraint) under the scheduling mode.
	GoRule(name, cond string, constraint bool, sched int, done func(error))
	// GoRevive lifts a rule's quarantine.
	GoRevive(name string, done func(error))

	// OnFiring registers the single firing observer, called for every
	// subsequent firing (and gap) in sequence order from one goroutine at
	// a time. The returned cancel removes it. Observers must not call
	// backend mutators and should hand the event off quickly: they run on
	// the backend's firing-producing goroutine.
	OnFiring(fn func(FiringEvent)) (cancel func())
	// SyncFirings delivers the firing backlog from the given sequence
	// number, atomically with respect to the live OnFiring stream: fn runs
	// at the serialization point with the clamped start index, and every
	// firing after the backlog is observed through OnFiring exactly once.
	SyncFirings(from int, fn func(from int, backlog []FiringEvent))

	// Now returns the current engine time (the max across shards, for a
	// sharded backend).
	Now() int64
	// Items snapshots the database (the union across shards).
	Items() (map[string]value.Value, error)
	// Firings lists the firing log from the given sequence number.
	Firings(from int) ([]FiringEvent, error)
	// Rules lists the registered rules in wire form.
	Rules() ([]wire.RuleJSON, error)
	// Health lists per-rule health and the degraded cause ("" if healthy).
	Health() ([]wire.HealthJSON, string, error)

	// Barrier returns after every operation submitted before the call has
	// been applied and its done callback invoked.
	Barrier()
	// Close shuts the backend down: stops the pipeline after draining
	// submitted operations and releases the engine(s). No Go* calls may be
	// made after Close begins.
	Close() error
}

// EngineBackend runs one adb.Engine behind a serializing commit pipeline:
// every mutation executes on a single goroutine in submission order, so
// the engine's deterministic firing order is preserved. It is the backend
// a single-node server fronts, and the per-shard building block of the
// cluster router.
type EngineBackend struct {
	eng *adb.Engine
	// ops is the pipeline: mutations execute on the goroutine draining it.
	ops      chan func()
	pipeDone chan struct{}
	// seq is the next firing's absolute index; touched only on the
	// pipeline goroutine (the engine observer runs inside pipeline ops).
	seq int

	obs       atomic.Pointer[func(FiringEvent)]
	cancelObs func()
	closeOnce sync.Once
	closeErr  error
}

// NewEngineBackend wraps eng in a commit pipeline and starts it. The
// engine must not be mutated by anyone else from here on; Close closes it.
func NewEngineBackend(eng *adb.Engine) *EngineBackend {
	b := &EngineBackend{
		eng:      eng,
		ops:      make(chan func(), 256),
		pipeDone: make(chan struct{}),
	}
	b.seq = len(eng.Firings())
	b.cancelObs = eng.OnFiring(b.fired)
	go b.pipeline()
	return b
}

// Engine exposes the wrapped engine for read-only inspection (tests and
// the cluster's equivalence checks); mutating it directly would race the
// pipeline.
func (b *EngineBackend) Engine() *adb.Engine { return b.eng }

func (b *EngineBackend) pipeline() {
	defer close(b.pipeDone)
	for fn := range b.ops {
		fn()
	}
}

// fired runs inside the engine call that produced the firing, on the
// pipeline goroutine, so observers see firings in exactly the engine's
// order with consecutive sequence numbers.
func (b *EngineBackend) fired(f adb.Firing) {
	fe := FiringEvent{F: f, Seq: b.seq}
	b.seq++
	if fn := b.obs.Load(); fn != nil {
		(*fn)(fe)
	}
}

func (b *EngineBackend) GoTxn(ts int64, updates map[string]value.Value, deletes []string,
	events []event.Event, done func(int64, error)) {
	b.ops <- func() {
		// Timestamp 0 asks for the next tick; the pipeline is the only
		// mutator, so now+1 is race-free and strictly increasing.
		if ts == 0 {
			ts = b.eng.Now() + 1
		}
		done(ts, b.eng.ExecTxn(ts, updates, deletes, events...))
	}
}

func (b *EngineBackend) GoEmit(ts int64, events []event.Event, done func(int64, error)) {
	b.ops <- func() {
		if ts == 0 {
			ts = b.eng.Now() + 1
		}
		done(ts, b.eng.Emit(ts, events...))
	}
}

func (b *EngineBackend) GoRule(name, cond string, constraint bool, sched int, done func(error)) {
	b.ops <- func() {
		opt := adb.WithScheduling(adb.Scheduling(sched))
		if constraint {
			done(b.eng.AddConstraint(name, cond, opt))
		} else {
			done(b.eng.AddTrigger(name, cond, nil, opt))
		}
	}
}

func (b *EngineBackend) GoRevive(name string, done func(error)) {
	b.ops <- func() { done(b.eng.ReviveRule(name)) }
}

func (b *EngineBackend) OnFiring(fn func(FiringEvent)) (cancel func()) {
	b.obs.Store(&fn)
	return func() { b.obs.CompareAndSwap(&fn, nil) }
}

// Follow streams the whole firing log through fn: the backlog first, then
// every live firing, each exactly once in order. The switchover happens at
// the serialization point, so nothing is lost or duplicated. Follow takes
// the single observer slot (it is OnFiring with a backlog); the cluster
// router's per-shard fan-in uses it.
func (b *EngineBackend) Follow(fn func(FiringEvent)) {
	b.ops <- func() {
		for i, f := range b.eng.Firings() {
			fn(FiringEvent{F: f, Seq: i})
		}
		b.obs.Store(&fn)
	}
}

func (b *EngineBackend) SyncFirings(from int, fn func(int, []FiringEvent)) {
	b.ops <- func() {
		fs := b.eng.Firings()
		if from < 0 {
			from = 0
		}
		if from > len(fs) {
			from = len(fs)
		}
		backlog := make([]FiringEvent, 0, len(fs)-from)
		for i := from; i < len(fs); i++ {
			backlog = append(backlog, FiringEvent{F: fs[i], Seq: i})
		}
		fn(from, backlog)
	}
}

func (b *EngineBackend) Now() int64 { return b.eng.Now() }

func (b *EngineBackend) Items() (map[string]value.Value, error) {
	db := b.eng.DB()
	items := make(map[string]value.Value, db.Len())
	db.Range(func(name string, v value.Value) bool {
		items[name] = v
		return true
	})
	return items, nil
}

func (b *EngineBackend) Firings(from int) ([]FiringEvent, error) {
	fs := b.eng.Firings()
	if from < 0 {
		from = 0
	}
	if from > len(fs) {
		from = len(fs)
	}
	out := make([]FiringEvent, 0, len(fs)-from)
	for i := from; i < len(fs); i++ {
		out = append(out, FiringEvent{F: fs[i], Seq: i})
	}
	return out, nil
}

func (b *EngineBackend) Rules() ([]wire.RuleJSON, error) { return EngineRules(b.eng) }

func (b *EngineBackend) Health() ([]wire.HealthJSON, string, error) { return EngineHealth(b.eng) }

// Storage implements StorageBackend: the stats read runs at the
// serialization point (the persist layer is not synchronized against a
// concurrent append).
func (b *EngineBackend) Storage() (wire.StorageJSON, error) {
	var st adb.StorageStats
	var err error
	b.Do(func() { st, err = b.eng.Storage() })
	if err != nil {
		return wire.StorageJSON{}, err
	}
	return StorageWire(st), nil
}

// StorageWire renders engine storage stats in wire form; shared by the
// backend, the replication node and the cluster router.
func StorageWire(st adb.StorageStats) wire.StorageJSON {
	return wire.StorageJSON{
		Segments:      st.Segments,
		WalBytes:      st.WALBytes,
		Snapshots:     st.Snapshots,
		SnapshotBytes: st.SnapshotBytes,
		HeadLsn:       st.HeadLSN,
		LastLsn:       st.LastLSN,
		HistoryWindow: st.HistoryWindow,
		HistoryFloor:  st.HistoryFloor,
		SpillHistory:  st.SpillHistory,
		TierRows:      st.TierRows,
		TierBytes:     st.TierBytes,
	}
}

// EngineRules renders an engine's registered rules in wire form; shared
// by EngineBackend and the replication follower node, which serves the
// same queries from a replayed engine.
func EngineRules(eng *adb.Engine) ([]wire.RuleJSON, error) {
	var out []wire.RuleJSON
	for _, name := range eng.RuleNames() {
		info, ok := eng.Rule(name)
		if !ok {
			continue
		}
		out = append(out, wire.RuleJSON{
			Name:       info.Name,
			Condition:  info.Condition,
			Constraint: info.Constraint,
			Scheduling: int(info.Scheduling),
			Parameters: info.Parameters,
			Pending:    info.PendingStates,
		})
	}
	return out, nil
}

// EngineHealth renders an engine's per-rule health and degraded cause in
// wire form; see EngineRules.
func EngineHealth(eng *adb.Engine) ([]wire.HealthJSON, string, error) {
	var out []wire.HealthJSON
	for _, name := range eng.RuleNames() {
		h, ok := eng.RuleHealth(name)
		if !ok {
			continue
		}
		hj := wire.HealthJSON{
			Rule:        h.Rule,
			Quarantined: h.Quarantined,
			Consecutive: h.ConsecutiveFailures,
			Total:       h.TotalFailures,
			LastAt:      h.LastFailureAt,
		}
		if h.LastError != nil {
			hj.LastError = h.LastError.Error()
		}
		out = append(out, hj)
	}
	degraded := ""
	if err := eng.Degraded(); err != nil {
		degraded = err.Error()
	}
	return out, degraded, nil
}

// Do runs fn at the backend's serialization point — atomically with
// respect to commits — and waits for it. The replication shipper uses it
// to install the WAL flush hook and read the backlog without racing a
// concurrent flush; fn must not call backend mutators (deadlock).
func (b *EngineBackend) Do(fn func()) {
	done := make(chan struct{})
	b.ops <- func() { fn(); close(done) }
	<-done
}

func (b *EngineBackend) Barrier() {
	barrier := make(chan struct{})
	b.ops <- func() { close(barrier) }
	<-barrier
}

func (b *EngineBackend) Close() error {
	b.closeOnce.Do(func() {
		b.cancelObs()
		close(b.ops)
		<-b.pipeDone
		b.closeErr = b.eng.Close()
	})
	return b.closeErr
}
