package server

import (
	"testing"
	"time"

	"ptlactive/client"
	"ptlactive/internal/value"
)

// TestSubscribeResumeBySeqAfterReconnect pins the reconnect contract a
// replication-aware client relies on: a subscriber that loses its
// connection mid-stream reconnects, resumes from the last sequence number
// it saw plus one, and receives the missed backlog followed by live
// firings with contiguous sequence numbers — no duplicates, no gaps.
func TestSubscribeResumeBySeqAfterReconnect(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	fire := func(cl *client.Client, ts int64) {
		t.Helper()
		if _, err := cl.Exec(ts, map[string]value.Value{"a": value.NewInt(9)}); err != nil {
			t.Fatal(err)
		}
	}
	for ts := int64(1); ts <= 3; ts++ {
		fire(c, ts)
	}

	// First subscriber session: read part of the stream, then drop the
	// connection abruptly (no bye) mid-subscription.
	c1 := dial(t, addr)
	sub1, err := c1.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := -1
	for i := 0; i < 3; i++ {
		select {
		case ev := <-sub1.C:
			if ev.Gap != 0 || ev.Seq != lastSeq+1 {
				t.Fatalf("event %d = %+v, want seq %d", i, ev, lastSeq+1)
			}
			lastSeq = ev.Seq
		case <-time.After(5 * time.Second):
			t.Fatal("backlog stalled")
		}
	}
	c1.Close()

	// Firings keep happening while the subscriber is gone.
	fire(c, 4)
	fire(c, 5)

	// Reconnect and resume from lastSeq+1: the missed firings arrive as
	// backlog, then live ones follow, all contiguous.
	c2 := dial(t, addr)
	sub2, err := c2.Subscribe(lastSeq + 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantTS := range []int64{4, 5} {
		select {
		case ev := <-sub2.C:
			if ev.Gap != 0 || ev.Seq != lastSeq+1 || ev.Firing.Time != wantTS {
				t.Fatalf("resumed event = %+v, want seq %d at t=%d", ev, lastSeq+1, wantTS)
			}
			lastSeq = ev.Seq
		case <-time.After(5 * time.Second):
			t.Fatal("resume backlog stalled")
		}
	}
	fire(c, 6)
	select {
	case ev := <-sub2.C:
		if ev.Gap != 0 || ev.Seq != lastSeq+1 || ev.Firing.Time != 6 {
			t.Fatalf("live event after resume = %+v, want seq %d", ev, lastSeq+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live firing after resume never arrived")
	}
}
