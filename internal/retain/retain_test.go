package retain

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func row(item string, v int, start, end int64) Row {
	return Row{Item: item, V: json.RawMessage(fmt.Sprintf("%d", v)), Start: start, End: end}
}

func TestTierSpillAsOfRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.cold")
	tr, err := OpenTier(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Spill([]Row{row("a", 1, 0, 10), row("a", 2, 10, 20), row("b", 7, 5, 15)}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.AsOf("a", 12)
	if err != nil || !ok || string(v) != "2" {
		t.Fatalf("AsOf(a,12) = %s,%t,%v", v, ok, err)
	}
	if _, ok, _ := tr.AsOf("a", 25); ok {
		t.Fatal("AsOf past the spilled intervals matched")
	}
	if _, ok, _ := tr.AsOf("c", 5); ok {
		t.Fatal("AsOf on an unknown item matched")
	}
	// End is exclusive.
	v, ok, _ = tr.AsOf("a", 10)
	if !ok || string(v) != "2" {
		t.Fatalf("AsOf(a,10) = %s,%t; [10,20) should win", v, ok)
	}
}

// TestTierWatermarkIdempotent re-spills the same rows (the state a crash
// between a spill and its covering snapshot reproduces); the watermark
// must drop them so the tier holds no duplicates.
func TestTierWatermarkIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.cold")
	tr, err := OpenTier(path)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Row{row("a", 1, 0, 10), row("b", 2, 0, 5)}
	if err := tr.Spill(batch); err != nil {
		t.Fatal(err)
	}
	rows1, size1 := tr.Stats()
	if err := tr.Spill(batch); err != nil {
		t.Fatal(err)
	}
	if rows2, size2 := tr.Stats(); rows2 != rows1 || size2 != size1 {
		t.Fatalf("re-spill grew the tier: %d/%d -> %d/%d", rows1, size1, rows2, size2)
	}
	tr.Close()
	// The watermark survives a reopen.
	tr2, err := OpenTier(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if err := tr2.Spill(batch); err != nil {
		t.Fatal(err)
	}
	if rows3, _ := tr2.Stats(); rows3 != rows1 {
		t.Fatalf("re-spill after reopen grew the tier to %d rows", rows3)
	}
}

// TestTierTornTailEveryByte truncates the tier file at every byte; every
// prefix must open, keep the complete rows, and spill new ones cleanly.
func TestTierTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.cold")
	tr, err := OpenTier(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Spill([]Row{row("a", 1, 0, 10), row("a", 2, 10, 20), row("b", 3, 0, 30)}); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tr2, err := OpenTier(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		rows, size := tr2.Stats()
		if size > int64(cut) {
			t.Fatalf("cut %d: claims %d valid bytes", cut, size)
		}
		_ = rows
		tr2.Close()
	}
}

// TestTierMidFileCorruptionRefused flips a byte in the first row with
// intact rows after it; that is not a torn tail and must be refused.
func TestTierMidFileCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.cold")
	tr, err := OpenTier(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Spill([]Row{row("a", 1, 0, 10), row("a", 2, 10, 20)}); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // break the first row's JSON structure
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTier(path); err == nil {
		t.Fatal("mid-file corruption opened cleanly")
	}
}
