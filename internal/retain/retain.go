// Package retain implements the cold tier of the history-retention
// policy: an append-only JSON-lines file holding closed aux-relation
// intervals that were pruned from the resident hot window. Spills are
// fsynced before the resident rows are dropped, so the union of resident
// and tiered rows always contains every captured interval; per-item
// watermarks make re-spills after a crash idempotent. AsOf answers
// point-in-time queries for times older than the hot window by scanning
// the tier (intervals are disjoint per item, so at most one row matches).
package retain

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrHistoryTruncated reports that a point-in-time query fell outside the
// retained history window and no cold tier is configured to answer it:
// the engine dropped that history rather than spilling it.
var ErrHistoryTruncated = errors.New("retain: history truncated")

// Row is one spilled interval: item held value V over [Start, End).
type Row struct {
	Item  string          `json:"item"`
	V     json.RawMessage `json:"v"`
	Start int64           `json:"start"`
	End   int64           `json:"end"`
}

// Tier is an open cold-tier file. One engine owns a tier at a time;
// Spill runs at the engine's serialization point, while AsOf and Stats
// may run concurrently from query paths (the mutex covers the append
// state; AsOf reads the durable prefix of the file, which appends never
// rewrite).
type Tier struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64 // durable valid bytes
	rows int64
	// water tracks, per item, the largest End already spilled: a crash
	// between a spill and the snapshot that would have made the prune
	// durable re-presents the same rows, and the watermark drops them.
	water map[string]int64
}

// OpenTier opens (creating if needed) the tier file at path. A torn final
// line — the only damage a crash mid-spill can leave — is truncated; a
// malformed line followed by intact ones is corruption and refused.
func OpenTier(path string) (*Tier, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("retain: open tier: %w", err)
	}
	t := &Tier{path: path, water: map[string]int64{}}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // incomplete final line: torn tail
		}
		line := data[off : off+nl]
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			if rest := data[off+nl+1:]; validLineFollows(rest) {
				return nil, fmt.Errorf("retain: tier corrupt at offset %d (%v) with intact rows after it", off, err)
			}
			break // torn tail that happens to contain a newline
		}
		t.rows++
		if row.End > t.water[row.Item] {
			t.water[row.Item] = row.End
		}
		off += nl + 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("retain: open tier: %w", err)
	}
	if err := f.Truncate(int64(off)); err != nil {
		f.Close()
		return nil, fmt.Errorf("retain: truncate tier: %w", err)
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	t.f = f
	t.size = int64(off)
	return t, nil
}

// validLineFollows reports whether rest contains at least one complete,
// parseable row — which would make the preceding damage mid-file
// corruption rather than a torn tail.
func validLineFollows(rest []byte) bool {
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return false
		}
		var row Row
		if err := json.Unmarshal(rest[:nl], &row); err == nil {
			return true
		}
		rest = rest[nl+1:]
	}
	return false
}

// Spill appends rows to the tier and fsyncs them. Rows at or below an
// item's watermark were already spilled by a previous pass and are
// skipped, so replay-driven re-prunes are idempotent. The caller must not
// drop the resident rows until Spill returns nil.
func (t *Tier) Spill(rows []Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return errors.New("retain: tier closed")
	}
	var buf bytes.Buffer
	appended := 0
	for _, row := range rows {
		if row.End <= t.water[row.Item] {
			continue
		}
		line, err := json.Marshal(row)
		if err != nil {
			return fmt.Errorf("retain: encode row: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
		appended++
	}
	if appended == 0 {
		return nil
	}
	if _, err := t.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("retain: spill: %w", err)
	}
	if err := t.f.Sync(); err != nil {
		return fmt.Errorf("retain: spill sync: %w", err)
	}
	t.size += int64(buf.Len())
	t.rows += int64(appended)
	for _, row := range rows {
		if row.End > t.water[row.Item] {
			t.water[row.Item] = row.End
		}
	}
	return nil
}

// AsOf returns the spilled value item held at time ts, scanning the tier
// file. Intervals are disjoint per item, so at most one row matches; ok
// is false when the tier holds no interval containing ts.
func (t *Tier) AsOf(item string, ts int64) (json.RawMessage, bool, error) {
	t.mu.Lock()
	durable := t.size
	path := t.path
	t.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("retain: read tier: %w", err)
	}
	if int64(len(data)) > durable {
		data = data[:durable]
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		var row Row
		if err := json.Unmarshal(data[:nl], &row); err != nil {
			break
		}
		if row.Item == item && row.Start <= ts && ts < row.End {
			return row.V, true, nil
		}
		data = data[nl+1:]
	}
	return nil, false, nil
}

// Stats reports the tier's row count and file size.
func (t *Tier) Stats() (rows, size int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rows, t.size
}

// Close closes the tier file.
func (t *Tier) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
