package naive

import (
	"math/rand"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/ptlgen"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

func mustParse(t *testing.T, src string) ptl.Formula {
	t.Helper()
	f, err := ptl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return f
}

// histA builds a small history over item "a": values with timestamps, each
// a commit, plus an event stream.
func histA(t *testing.T, vals []int64, events map[int][]event.Event) *history.History {
	t.Helper()
	db := history.EmptyDB().With("a", value.NewInt(vals[0]))
	b := history.NewBuilder(db, 0)
	for i, v := range vals[1:] {
		var extra []event.Event
		if events != nil {
			extra = events[i+1]
		}
		if err := b.Commit(int64(i+1), int64(i+1), map[string]value.Value{"a": value.NewInt(v)}, extra...); err != nil {
			t.Fatal(err)
		}
	}
	return b.History()
}

func TestBasicOperators(t *testing.T) {
	// a: 1, 5, 2 at times 0, 1, 2.
	h := histA(t, []int64{1, 5, 2}, nil)
	reg := query.NewRegistry()
	ev := New(reg, h, nil)

	type tc struct {
		src  string
		want []bool // per state
	}
	cases := []tc{
		{`item("a") > 3`, []bool{false, true, false}},
		{`previously (item("a") > 3)`, []bool{false, true, true}},
		{`throughout (item("a") > 0)`, []bool{true, true, true}},
		{`throughout (item("a") > 2)`, []bool{false, false, false}},
		{`lasttime (item("a") = 5)`, []bool{false, false, true}},
		{`lasttime lasttime (item("a") = 1)`, []bool{false, false, true}},
		{`(item("a") > 0) since (item("a") = 5)`, []bool{false, true, true}},
		{`(item("a") > 4) since (item("a") = 1)`, []bool{true, true, false}},
		{`previously <= 1 (item("a") = 5)`, []bool{false, true, true}},
		// At time 2, state with a=5 is at time 1, within bound 1; a=1 at time 0 is outside bound 1... wait: 2-1=1 >= cutoff.
		{`previously <= 0 (item("a") = 5)`, []bool{false, true, false}},
		{`[x <- item("a")] previously (item("a") = x + 4)`, []bool{false, false, false}},
		{`[x <- item("a")] previously (item("a") = x - 1)`, []bool{false, false, true}},
		{`[x <- item("a")] previously (item("a") = x + 3)`, []bool{false, false, true}},
	}
	for _, c := range cases {
		f := mustParse(t, c.src)
		for i, want := range c.want {
			got, err := ev.Sat(i, f, nil)
			if err != nil {
				t.Fatalf("%q state %d: %v", c.src, i, err)
			}
			if got != want {
				t.Errorf("%q state %d = %t, want %t", c.src, i, got, want)
			}
		}
	}
}

func TestDesugarEquivalence(t *testing.T) {
	// The naive evaluator implements surface operators directly; evaluating
	// the desugared form must agree, validating Desugar independently of
	// the incremental algorithm.
	reg := ptlgen.Registry()
	iters := 300
	if testing.Short() {
		iters = 50
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(9000 + it)))
		f := ptlgen.Formula(rng, 1+rng.Intn(4))
		g := ptl.Desugar(ptl.RenameApart(f))
		h := ptlgen.History(rng, 10)
		ev := New(reg, h, nil)
		for i := 0; i < h.Len(); i++ {
			a, err := ev.Sat(i, f, nil)
			if err != nil {
				t.Fatalf("seed %d: surface: %v\n%s", it, err, f)
			}
			b, err := ev.Sat(i, g, nil)
			if err != nil {
				t.Fatalf("seed %d: desugared: %v\n%s", it, err, g)
			}
			if a != b {
				t.Fatalf("seed %d state %d: surface=%t desugared=%t\nsurface: %s\ndesugared: %s", it, i, a, b, f, g)
			}
		}
	}
}

func TestEventsAndEnv(t *testing.T) {
	h := histA(t, []int64{1, 2}, map[int][]event.Event{
		1: {event.New("login", value.NewString("alice"))},
	})
	reg := query.NewRegistry()
	ev := New(reg, h, nil)
	f := mustParse(t, `@login(U)`)
	got, err := ev.Sat(1, f, Env{"U": value.NewString("alice")})
	if err != nil || !got {
		t.Fatalf("alice: %t %v", got, err)
	}
	got, err = ev.Sat(1, f, Env{"U": value.NewString("bob")})
	if err != nil || got {
		t.Fatalf("bob: %t %v", got, err)
	}
	// Unbound variable errors.
	if _, err := ev.Sat(1, f, nil); err == nil {
		t.Error("unbound variable should error")
	}
	// Out-of-range index errors.
	if _, err := ev.Sat(99, f, nil); err == nil {
		t.Error("out of range index should error")
	}
	// SatLast uses the last state.
	got, err = ev.SatLast(mustParse(t, `item("a") = 2`), nil)
	if err != nil || !got {
		t.Fatalf("SatLast: %t %v", got, err)
	}
}

func TestPaperHourlyAverage(t *testing.T) {
	// sum(price; time = 540; time mod 60 = 0) / sum(1; ...) — the paper's
	// hourly average since 9AM (minute 540).
	db := history.EmptyDB().With("price", value.NewFloat(60))
	b := history.NewBuilder(db, 540)
	prices := []float64{80, 70, 90} // at minutes 600, 660, 665
	times := []int64{600, 660, 665}
	for i := range prices {
		if err := b.Commit(times[i], int64(i+1), map[string]value.Value{"price": value.NewFloat(prices[i])}); err != nil {
			t.Fatal(err)
		}
	}
	h := b.History()
	reg := query.NewRegistry()
	ev := New(reg, h, nil)
	f := mustParse(t, `sum(item("price"); time = 540; time mod 60 = 0) / sum(1; time = 540; time mod 60 = 0) > 70`)
	// At state 3 (time 665): sampling points are 540 (60), 600 (80), 660 (70);
	// the start state 540 is also a sampling point (540 mod 60 == 0).
	// avg = 210/3 = 70 -> not > 70.
	got, err := ev.SatLast(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("avg 70 must not satisfy > 70")
	}
	f2 := mustParse(t, `sum(item("price"); time = 540; time mod 60 = 0) / sum(1; time = 540; time mod 60 = 0) >= 70`)
	got, err = ev.SatLast(f2, nil)
	if err != nil || !got {
		t.Errorf("avg 70 should satisfy >= 70: %t %v", got, err)
	}
}

func TestAggregateUndefined(t *testing.T) {
	h := histA(t, []int64{1, 2}, nil)
	reg := query.NewRegistry()
	ev := New(reg, h, nil)
	// Start formula never satisfied: undefined aggregate, atoms false.
	f := mustParse(t, `sum(item("a"); time = 999; true) >= 0`)
	got, err := ev.SatLast(f, nil)
	if err != nil || got {
		t.Errorf("undefined aggregate atom should be false: %t %v", got, err)
	}
	// Negation of an undefined-aggregate atom is true.
	f2 := mustParse(t, `not (sum(item("a"); time = 999; true) >= 0)`)
	got, err = ev.SatLast(f2, nil)
	if err != nil || !got {
		t.Errorf("negated undefined atom should be true: %t %v", got, err)
	}
	// Defined start, empty samples: sum = 0.
	f3 := mustParse(t, `sum(item("a"); time = 0; false) = 0`)
	got, err = ev.SatLast(f3, nil)
	if err != nil || !got {
		t.Errorf("empty-sample sum should be 0: %t %v", got, err)
	}
	// avg of zero samples is undefined.
	f4 := mustParse(t, `avg(item("a"); time = 0; false) = 0`)
	got, err = ev.SatLast(f4, nil)
	if err != nil || got {
		t.Errorf("empty-sample avg should be undefined: %t %v", got, err)
	}
}

func TestAggregateFns(t *testing.T) {
	// a: 4, 1, 3 at times 0,1,2; samples at every state (true).
	h := histA(t, []int64{4, 1, 3}, nil)
	reg := query.NewRegistry()
	ev := New(reg, h, nil)
	cases := map[string]bool{
		`sum(item("a"); time = 0; true) = 8`:   true,
		`count(item("a"); time = 0; true) = 3`: true,
		`min(item("a"); time = 0; true) = 1`:   true,
		`max(item("a"); time = 0; true) = 4`:   true,
		`avg(item("a"); time = 0; true) > 2.6`: true,
		`avg(item("a"); time = 0; true) < 2.7`: true,
		// Window 1 at time 2 keeps times 1..2: values 1, 3.
		`sum(item("a"); window 1; true) = 4`: true,
		`min(item("a"); window 0; true) = 3`: true,
	}
	for src, want := range cases {
		got, err := ev.SatLast(mustParse(t, src), nil)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q = %t, want %t", src, got, want)
		}
	}
}

func TestAggregateFold(t *testing.T) {
	vals := []value.Value{value.NewInt(3), value.NewInt(1), value.NewInt(2)}
	type tc struct {
		fn   ptl.AggFn
		want value.Value
	}
	for _, c := range []tc{
		{ptl.AggSum, value.NewInt(6)},
		{ptl.AggCount, value.NewInt(3)},
		{ptl.AggAvg, value.NewFloat(2)},
		{ptl.AggMin, value.NewInt(1)},
		{ptl.AggMax, value.NewInt(3)},
	} {
		got, err := Aggregate(c.fn, vals)
		if err != nil {
			t.Fatalf("%s: %v", c.fn, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.fn, got, c.want)
		}
	}
	if _, err := Aggregate("median", vals); err == nil {
		t.Error("unknown aggregate should error")
	}
	if v, err := Aggregate(ptl.AggAvg, nil); err != nil || !v.IsNull() {
		t.Error("avg of none should be Null")
	}
	if v, err := Aggregate(ptl.AggSum, nil); err != nil || v.AsInt() != 0 {
		t.Error("sum of none should be 0")
	}
}

func TestExecutedNaive(t *testing.T) {
	h := histA(t, []int64{1, 2, 3}, nil)
	reg := query.NewRegistry()
	log := execList{
		{Rule: "r1", Params: []value.Value{value.NewInt(9)}, Time: 1},
	}
	ev := New(reg, h, log)
	f := mustParse(t, `executed(r1, X, T)`)
	env := Env{"X": value.NewInt(9), "T": value.NewInt(1)}
	// At state 1 (time 1): execution time 1 is not strictly before 1.
	got, err := ev.Sat(1, f, env)
	if err != nil || got {
		t.Errorf("state 1: %t %v", got, err)
	}
	got, err = ev.Sat(2, f, env)
	if err != nil || !got {
		t.Errorf("state 2: %t %v", got, err)
	}
	// Wrong params do not match.
	got, _ = ev.Sat(2, f, Env{"X": value.NewInt(8), "T": value.NewInt(1)})
	if got {
		t.Error("wrong param matched")
	}
}

type execList []ptl.Execution

func (l execList) Executions(rule string, before int64) []ptl.Execution {
	var out []ptl.Execution
	for _, e := range l {
		if e.Rule == rule && e.Time < before {
			out = append(out, e)
		}
	}
	return out
}

func TestMembershipNaive(t *testing.T) {
	rel := value.NewRelation([][]value.Value{
		{value.NewString("x"), value.NewInt(1)},
	})
	db := history.EmptyDB().With("r", rel)
	b := history.NewBuilder(db, 0)
	h := b.History()
	reg := query.NewRegistry()
	ev := New(reg, h, nil)
	f := mustParse(t, `("x", 1) in item("r")`)
	got, err := ev.SatLast(f, nil)
	if err != nil || !got {
		t.Fatalf("membership: %t %v", got, err)
	}
	f2 := mustParse(t, `("x", 2) in item("r")`)
	got, err = ev.SatLast(f2, nil)
	if err != nil || got {
		t.Fatalf("non-membership: %t %v", got, err)
	}
	// Membership in a scalar errors.
	f3 := mustParse(t, `1 in time`)
	if _, err := ev.SatLast(f3, nil); err == nil {
		t.Error("membership in scalar should error")
	}
}
