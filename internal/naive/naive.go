// Package naive implements the direct (whole-history) semantics of PTL
// from Section 4.2. It is deliberately simple and unoptimized: every
// evaluation recurses over the entire stored history. It serves two
// roles — the oracle that property tests compare the incremental
// algorithm against (Theorem 1), and the baseline the E1/E3 benchmarks
// measure the incremental algorithm's advantage over.
package naive

import (
	"fmt"

	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// Evaluator evaluates PTL formulas directly over a history.
type Evaluator struct {
	reg  *query.Registry
	log  ptl.ExecLog
	hist *history.History
}

// New creates a naive evaluator over a history. The history may keep
// growing; evaluations always see its current states. A nil log means no
// recorded executions.
func New(reg *query.Registry, hist *history.History, log ptl.ExecLog) *Evaluator {
	if log == nil {
		log = ptl.NoExecutions{}
	}
	return &Evaluator{reg: reg, log: log, hist: hist}
}

// Env maps variable names to values.
type Env map[string]value.Value

// clone extends an environment without mutating the parent.
func (e Env) with(name string, v value.Value) Env {
	out := make(Env, len(e)+1)
	for k, w := range e {
		out[k] = w
	}
	out[name] = v
	return out
}

// Sat reports whether the formula holds at state index i of the history,
// under the given environment for its free variables. The formula may use
// the surface operators (previously, throughout, bounds) directly; this
// gives an implementation of the semantics that is independent of the
// Desugar rewriting, so tests can validate Desugar itself.
func (ev *Evaluator) Sat(i int, f ptl.Formula, env Env) (bool, error) {
	if i < 0 || i >= ev.hist.Len() {
		return false, fmt.Errorf("naive: state index %d out of range 0..%d", i, ev.hist.Len()-1)
	}
	return ev.sat(i, f, env)
}

// SatLast evaluates the formula at the most recent state.
func (ev *Evaluator) SatLast(f ptl.Formula, env Env) (bool, error) {
	return ev.Sat(ev.hist.Len()-1, f, env)
}

func (ev *Evaluator) sat(i int, f ptl.Formula, env Env) (bool, error) {
	st := ev.hist.At(i)
	switch x := f.(type) {
	case *ptl.BoolConst:
		return x.V, nil
	case *ptl.Cmp:
		l, err := ev.Term(i, x.L, env)
		if err != nil {
			return false, err
		}
		r, err := ev.Term(i, x.R, env)
		if err != nil {
			return false, err
		}
		// Undefined (Null) values — e.g. an aggregate before its first
		// start point — make their atom false rather than erroring.
		if l.IsNull() || r.IsNull() {
			return false, nil
		}
		return value.Cmp(x.Op, l, r)
	case *ptl.EventAtom:
		args := make([]value.Value, len(x.Args))
		for k, a := range x.Args {
			v, err := ev.Term(i, a, env)
			if err != nil {
				return false, err
			}
			args[k] = v
		}
		for _, e := range st.Events.ByName(x.Name) {
			if len(e.Args) != len(args) {
				continue
			}
			match := true
			for k := range args {
				if !e.Args[k].Equal(args[k]) {
					match = false
					break
				}
			}
			if match {
				return true, nil
			}
		}
		return false, nil
	case *ptl.Executed:
		args := make([]value.Value, len(x.Args))
		for k, a := range x.Args {
			v, err := ev.Term(i, a, env)
			if err != nil {
				return false, err
			}
			args[k] = v
		}
		tv, err := ev.Term(i, x.TimeArg, env)
		if err != nil {
			return false, err
		}
		if !tv.IsNumeric() {
			return false, fmt.Errorf("naive: executed time argument is %s, want numeric", tv.Kind())
		}
		for _, ex := range ev.log.Executions(x.Rule, st.TS) {
			if !value.NewInt(ex.Time).Equal(tv) || len(ex.Params) != len(args) {
				continue
			}
			match := true
			for k := range args {
				if !ex.Params[k].Equal(args[k]) {
					match = false
					break
				}
			}
			if match {
				return true, nil
			}
		}
		return false, nil
	case *ptl.Member:
		rel, err := ev.Term(i, x.Rel, env)
		if err != nil {
			return false, err
		}
		if rel.Kind() != value.Relation {
			return false, fmt.Errorf("naive: membership in %s, want relation", rel.Kind())
		}
		elems := make([]value.Value, len(x.Elems))
		for k, e := range x.Elems {
			v, err := ev.Term(i, e, env)
			if err != nil {
				return false, err
			}
			elems[k] = v
		}
		want := value.NewTuple(elems...)
		for _, row := range rel.Rows() {
			if value.NewTuple(row...).Equal(want) {
				return true, nil
			}
		}
		return false, nil
	case *ptl.Not:
		b, err := ev.sat(i, x.F, env)
		return !b, err
	case *ptl.And:
		l, err := ev.sat(i, x.L, env)
		if err != nil || !l {
			return false, err
		}
		return ev.sat(i, x.R, env)
	case *ptl.Or:
		l, err := ev.sat(i, x.L, env)
		if err != nil || l {
			return l, err
		}
		return ev.sat(i, x.R, env)
	case *ptl.Since:
		// ∃ j <= i: R at j (within bound) and L at every k in (j, i].
		for j := i; j >= 0; j-- {
			if x.Bound >= 0 && ev.hist.At(j).TS < st.TS-x.Bound {
				break
			}
			r, err := ev.sat(j, x.R, env)
			if err != nil {
				return false, err
			}
			if r {
				ok := true
				for k := j + 1; k <= i; k++ {
					l, err := ev.sat(k, x.L, env)
					if err != nil {
						return false, err
					}
					if !l {
						ok = false
						break
					}
				}
				if ok {
					return true, nil
				}
			}
			// Even if R fails at j, a witness may exist earlier provided L
			// holds from there on; keep scanning.
		}
		return false, nil
	case *ptl.Lasttime:
		if i == 0 {
			return false, nil
		}
		return ev.sat(i-1, x.F, env)
	case *ptl.Previously:
		for j := i; j >= 0; j-- {
			if x.Bound >= 0 && ev.hist.At(j).TS < st.TS-x.Bound {
				break
			}
			b, err := ev.sat(j, x.F, env)
			if err != nil {
				return false, err
			}
			if b {
				return true, nil
			}
		}
		return false, nil
	case *ptl.Throughout:
		for j := i; j >= 0; j-- {
			if x.Bound >= 0 && ev.hist.At(j).TS < st.TS-x.Bound {
				break
			}
			b, err := ev.sat(j, x.F, env)
			if err != nil {
				return false, err
			}
			if !b {
				return false, nil
			}
		}
		return true, nil
	case *ptl.Assign:
		v, err := ev.Term(i, x.Q, env)
		if err != nil {
			return false, err
		}
		return ev.sat(i, x.Body, env.with(x.Var, v))
	case *ptl.Until:
		// Finite-trace semantics: ∃ j in [i, end]: R at j (within bound)
		// and L at every k in [i, j).
		for j := i; j < ev.hist.Len(); j++ {
			if x.Bound >= 0 && ev.hist.At(j).TS > st.TS+x.Bound {
				break
			}
			r, err := ev.sat(j, x.R, env)
			if err != nil {
				return false, err
			}
			if r {
				ok := true
				for k := i; k < j; k++ {
					l, err := ev.sat(k, x.L, env)
					if err != nil {
						return false, err
					}
					if !l {
						ok = false
						break
					}
				}
				if ok {
					return true, nil
				}
			}
		}
		return false, nil
	case *ptl.Nexttime:
		// Strong next: false at the final state.
		if i+1 >= ev.hist.Len() {
			return false, nil
		}
		return ev.sat(i+1, x.F, env)
	case *ptl.Eventually:
		for j := i; j < ev.hist.Len(); j++ {
			if x.Bound >= 0 && ev.hist.At(j).TS > st.TS+x.Bound {
				break
			}
			b, err := ev.sat(j, x.F, env)
			if err != nil {
				return false, err
			}
			if b {
				return true, nil
			}
		}
		return false, nil
	case *ptl.Always:
		for j := i; j < ev.hist.Len(); j++ {
			if x.Bound >= 0 && ev.hist.At(j).TS > st.TS+x.Bound {
				break
			}
			b, err := ev.sat(j, x.F, env)
			if err != nil {
				return false, err
			}
			if !b {
				return false, nil
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("naive: unknown formula %T", f)
	}
}

// Term evaluates a term at state index i under env.
func (ev *Evaluator) Term(i int, t ptl.Term, env Env) (value.Value, error) {
	st := ev.hist.At(i)
	switch x := t.(type) {
	case *ptl.Const:
		return x.V, nil
	case *ptl.Var:
		v, ok := env[x.Name]
		if !ok {
			return value.Value{}, fmt.Errorf("naive: unbound variable %s", x.Name)
		}
		return v, nil
	case *ptl.Call:
		args := make([]value.Value, len(x.Args))
		for k, a := range x.Args {
			v, err := ev.Term(i, a, env)
			if err != nil {
				return value.Value{}, err
			}
			args[k] = v
		}
		return ev.reg.Eval(x.Fn, st, args)
	case *ptl.Arith:
		l, err := ev.Term(i, x.L, env)
		if err != nil {
			return value.Value{}, err
		}
		r, err := ev.Term(i, x.R, env)
		if err != nil {
			return value.Value{}, err
		}
		if l.IsNull() || r.IsNull() || divByZero(x.Op, r) {
			return value.Value{}, nil
		}
		return value.Arith(x.Op, l, r)
	case *ptl.Neg:
		v, err := ev.Term(i, x.X, env)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return value.Value{}, nil
		}
		return value.Arith(value.Sub, value.NewInt(0), v)
	case *ptl.Agg:
		return ev.aggregate(i, x, env)
	default:
		return value.Value{}, fmt.Errorf("naive: unknown term %T", t)
	}
}

// aggregate implements the Section-6.1 semantics directly: j is the
// highest index <= i whose prefix satisfies the starting formula; samples
// are the indices k in [j, i] whose prefixes satisfy the sampling formula;
// the result aggregates q over the sample states.
func (ev *Evaluator) aggregate(i int, a *ptl.Agg, env Env) (value.Value, error) {
	start := -1
	if a.Window >= 0 {
		// Moving-window form: samples are the instants within the last
		// Window time units.
		cutoff := ev.hist.At(i).TS - a.Window
		for j := 0; j <= i; j++ {
			if ev.hist.At(j).TS >= cutoff {
				start = j
				break
			}
		}
	} else {
		for j := i; j >= 0; j-- {
			b, err := ev.sat(j, a.Start, env)
			if err != nil {
				return value.Value{}, err
			}
			if b {
				start = j
				break
			}
		}
	}
	if start < 0 {
		// No start point exists: the aggregate is undefined (Null), which
		// makes any atom comparing it false. This matches the incremental
		// evaluator's "not started" state.
		return value.Value{}, nil
	}
	var samples []value.Value
	if start >= 0 {
		for k := start; k <= i; k++ {
			b, err := ev.sat(k, a.Sample, env)
			if err != nil {
				return value.Value{}, err
			}
			if !b {
				continue
			}
			v, err := ev.Term(k, a.Q, env)
			if err != nil {
				return value.Value{}, err
			}
			if !v.IsNumeric() {
				return value.Value{}, fmt.Errorf("naive: aggregate %s over non-numeric value %s", a.Fn, v)
			}
			samples = append(samples, v)
		}
	}
	return Aggregate(a.Fn, samples)
}

// Aggregate folds samples with the named aggregate function. Sum and count
// of zero samples are 0; avg, min and max of zero samples are undefined
// and yield the Null value, which makes any atom comparing them false
// (Section 6.1 leaves the empty aggregate undefined).
func Aggregate(fn ptl.AggFn, samples []value.Value) (value.Value, error) {
	switch fn {
	case ptl.AggCount:
		return value.NewInt(int64(len(samples))), nil
	case ptl.AggSum:
		acc := value.Value(value.NewInt(0))
		for _, s := range samples {
			var err error
			acc, err = value.Arith(value.Add, acc, s)
			if err != nil {
				return value.Value{}, err
			}
		}
		return acc, nil
	case ptl.AggAvg:
		if len(samples) == 0 {
			return value.Value{}, nil
		}
		acc := value.Value(value.NewFloat(0))
		for _, s := range samples {
			var err error
			acc, err = value.Arith(value.Add, acc, s)
			if err != nil {
				return value.Value{}, err
			}
		}
		return value.Arith(value.Div, acc, value.NewFloat(float64(len(samples))))
	case ptl.AggMin, ptl.AggMax:
		if len(samples) == 0 {
			return value.Value{}, nil
		}
		best := samples[0]
		for _, s := range samples[1:] {
			c, err := s.Compare(best)
			if err != nil {
				return value.Value{}, err
			}
			if (fn == ptl.AggMin && c < 0) || (fn == ptl.AggMax && c > 0) {
				best = s
			}
		}
		return best, nil
	default:
		return value.Value{}, fmt.Errorf("naive: unknown aggregate %q", fn)
	}
}

// divByZero reports a division or modulo with a zero right operand; in
// formula evaluation it yields the undefined value (its atom becomes
// false) instead of an error, consistently with empty aggregates.
func divByZero(op value.ArithOp, r value.Value) bool {
	if op != value.Div && op != value.Mod {
		return false
	}
	return r.IsNumeric() && r.AsFloat() == 0
}
