package persist

import (
	"errors"
	"fmt"
)

// ErrTruncatedHead reports that a requested WAL position predates the
// retained head: retention GC deleted the segments that held it because a
// durable snapshot covers them. A replication follower that hits it must
// bootstrap from a shipped snapshot instead of a frame backlog.
var ErrTruncatedHead = errors.New("persist: wal head truncated")

// TruncatedHeadError carries the positions: the requested LSN and the
// oldest LSN still on disk. It unwraps to ErrTruncatedHead.
type TruncatedHeadError struct {
	From int64 // requested position
	Head int64 // oldest retained durable LSN
}

func (e *TruncatedHeadError) Error() string {
	return fmt.Sprintf("persist: wal position %d unavailable (retained head is %d; earlier records are snapshot-covered)", e.From, e.Head)
}

func (e *TruncatedHeadError) Unwrap() error { return ErrTruncatedHead }
