package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	walFile    = "wal.log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// snapshotName is the file name of the snapshot covering WAL records
// through lsn; the zero-padded LSN makes lexical order equal LSN order.
func snapshotName(lsn int64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix)
}

// parseSnapshotName extracts the LSN from a snapshot file name.
func parseSnapshotName(name string) (int64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	lsn, err := strconv.ParseInt(mid, 10, 64)
	if err != nil || lsn < 0 {
		return 0, false
	}
	return lsn, true
}

// Store is an open durability directory: the WAL for appending plus the
// snapshot files. One engine owns a store at a time.
type Store struct {
	dir string
	log *Log
}

// OpenResult is what recovery found on disk.
type OpenResult struct {
	// Snapshot is the newest snapshot, nil when the directory has none.
	Snapshot *EngineSnapshot
	// SnapshotLSN is the last WAL record the snapshot covers (0 without a
	// snapshot).
	SnapshotLSN int64
	// Tail holds the WAL records after the snapshot, in LSN order; replay
	// applies exactly these.
	Tail []*Record
	// TruncatedAt is the file offset of a torn final record that was
	// discarded, -1 when the log ended cleanly.
	TruncatedAt int64
	// Epoch is the highest primary epoch recovery saw: the snapshot's, or
	// any epoch record's in the tail, whichever is larger (0 when the node
	// was never part of a promoted replica set).
	Epoch int64
}

// Open opens (creating if needed) a durability directory: it loads the
// newest snapshot — which must be valid; a damaged newest snapshot is an
// error, not a silent fallback — reads the WAL, truncates a torn final
// record, verifies LSN continuity and returns the records recovery must
// replay.
func Open(dir string) (*Store, *OpenResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	res := &OpenResult{TruncatedAt: -1}

	// Newest snapshot, by LSN embedded in the file name.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	var snapLSNs []int64
	for _, ent := range entries {
		if lsn, ok := parseSnapshotName(ent.Name()); ok {
			snapLSNs = append(snapLSNs, lsn)
		}
	}
	if len(snapLSNs) > 0 {
		sort.Slice(snapLSNs, func(i, j int) bool { return snapLSNs[i] > snapLSNs[j] })
		newest := snapLSNs[0]
		f, err := os.Open(filepath.Join(dir, snapshotName(newest)))
		if err != nil {
			return nil, nil, fmt.Errorf("persist: open snapshot: %w", err)
		}
		snap, err := DecodeSnapshot(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("persist: snapshot %s: %w", snapshotName(newest), err)
		}
		if snap.LSN != newest {
			return nil, nil, fmt.Errorf("persist: snapshot %s claims LSN %d", snapshotName(newest), snap.LSN)
		}
		res.Snapshot = snap
		res.SnapshotLSN = newest
	}

	// WAL scan: parse every record, truncate a torn tail, reject anything
	// worse.
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("persist: read wal: %w", err)
	}
	scan, err := scanRecords(data)
	if err != nil {
		return nil, nil, err
	}
	res.TruncatedAt = scan.truncatedAt

	// LSN continuity: every record follows its predecessor by exactly one.
	// A gap means a committed record is missing — replaying across it would
	// silently diverge, so it is a hard error.
	for i, rec := range scan.records {
		if rec.LSN < 1 {
			return nil, nil, fmt.Errorf("persist: wal record %d has invalid LSN %d", i, rec.LSN)
		}
		if !validKind(rec.Kind) {
			return nil, nil, fmt.Errorf("persist: wal record LSN %d has unknown kind %q", rec.LSN, rec.Kind)
		}
		if i > 0 && rec.LSN != scan.records[i-1].LSN+1 {
			return nil, nil, fmt.Errorf("persist: wal LSN gap: %d follows %d", rec.LSN, scan.records[i-1].LSN)
		}
	}

	// The replay tail is everything the snapshot does not cover. A crash
	// between writing a snapshot and resetting the WAL leaves covered
	// records in the file; they are skipped here. What must not happen is a
	// gap between the snapshot and the first uncovered record.
	if res.Snapshot != nil {
		res.Epoch = res.Snapshot.Epoch
	}
	for _, rec := range scan.records {
		if rec.Kind == KindEpoch && rec.Epoch > res.Epoch {
			res.Epoch = rec.Epoch
		}
		if rec.LSN > res.SnapshotLSN {
			res.Tail = append(res.Tail, rec)
		}
	}
	if len(res.Tail) > 0 && res.Tail[0].LSN != res.SnapshotLSN+1 {
		return nil, nil, fmt.Errorf("persist: wal starts at LSN %d but snapshot covers through %d", res.Tail[0].LSN, res.SnapshotLSN)
	}
	if res.Snapshot == nil && len(scan.records) > 0 && scan.records[0].LSN != 1 {
		return nil, nil, fmt.Errorf("persist: wal starts at LSN %d with no snapshot", scan.records[0].LSN)
	}

	next := res.SnapshotLSN + 1
	if n := len(scan.records); n > 0 && scan.records[n-1].LSN+1 > next {
		next = scan.records[n-1].LSN + 1
	}
	log, err := openLog(walPath, next, scan.size)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: open wal: %w", err)
	}
	return &Store{dir: dir, log: log}, res, nil
}

// Dir returns the durability directory path.
func (s *Store) Dir() string { return s.dir }

// Append writes one record to the WAL and returns its LSN.
func (s *Store) Append(rec *Record) (int64, error) { return s.log.Append(rec) }

// LastLSN returns the LSN of the most recent record (snapshot-covered or
// appended), 0 when nothing was ever logged.
func (s *Store) LastLSN() int64 { return s.log.LastLSN() }

// DisableSync turns off per-record fsync (tests and benchmarks).
func (s *Store) DisableSync() { s.log.DisableSync() }

// SetGroupCommit sets the WAL batch size (n > 1 buffers records and
// fsyncs once per batch; n <= 1 restores per-record durability), flushing
// any buffered records first.
func (s *Store) SetGroupCommit(n int) error { return s.log.SetGroupCommit(n) }

// Flush forces any buffered group-commit WAL records to stable storage.
func (s *Store) Flush() error { return s.log.Flush() }

// SetFailpoint installs (or clears, with nil) the WAL fault-injection
// hook; see Failpoint.
func (s *Store) SetFailpoint(fp Failpoint) { s.log.SetFailpoint(fp) }

// SetFlushHook installs (or clears, with nil) the durable-batch observer;
// see FlushHook.
func (s *Store) SetFlushHook(h FlushHook) { s.log.SetFlushHook(h) }

// AppendRaw appends already-framed WAL bytes verbatim (see Log.AppendRaw);
// replication followers write shipped primary frames with it.
func (s *Store) AppendRaw(data []byte, first, last int64) error {
	return s.log.AppendRaw(data, first, last)
}

// ReadFramesFrom reads the durable WAL frames with LSN >= from, split
// into chunks of at most maxChunk bytes at frame boundaries. It serves a
// replication follower's backlog request; the caller must ensure no
// concurrent append (the commit pipeline's serialization point). A
// position older than the log's first durable record is unavailable — it
// is covered by a snapshot — and a position beyond the end means the
// requester is ahead of this log; both are errors rather than guesses.
func (s *Store) ReadFramesFrom(from int64, maxChunk int) ([]WALChunk, error) {
	if from < 1 {
		from = 1
	}
	data, err := os.ReadFile(filepath.Join(s.dir, walFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: read wal: %w", err)
	}
	// Only the durable prefix ships: a torn tail (crash image) or buffered
	// suffix is not yet part of the replicated history.
	if int64(len(data)) > s.log.size {
		data = data[:s.log.size]
	}
	recs, offs, err := ParseFrames(data)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		// nextDurable is the LSN the next flushed record will carry;
		// buffered group-commit records are not durable yet.
		if nextDurable := s.log.next - int64(len(s.log.bufLSNs)); from == nextDurable {
			return nil, nil // empty log, requester is current
		}
		return nil, fmt.Errorf("persist: wal position %d unavailable (log covered through %d by snapshot)", from, s.log.next-1)
	}
	first, last := recs[0].LSN, recs[len(recs)-1].LSN
	if from < first {
		return nil, fmt.Errorf("persist: wal position %d unavailable (log starts at %d; earlier records are snapshot-covered)", from, first)
	}
	if from > last+1 {
		return nil, fmt.Errorf("persist: wal position %d is beyond the durable end %d", from, last)
	}
	if from == last+1 {
		return nil, nil // requester is current
	}
	start := offs[from-first]
	return SplitFrames(data[start:], maxChunk)
}

// SaveSnapshot atomically installs snap as the newest snapshot — temp
// file, fsync, rename, directory fsync — stamps it with the current last
// LSN, resets the WAL (those records are now covered) and removes older
// snapshot files.
func (s *Store) SaveSnapshot(snap *EngineSnapshot) error {
	snap.LSN = s.log.LastLSN()
	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	if err := EncodeSnapshot(tmp, snap); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("persist: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	final := filepath.Join(s.dir, snapshotName(snap.LSN))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	if err := s.log.ResetTo(snap.LSN); err != nil {
		return err
	}
	// Older snapshots are superseded; removal failures are harmless (the
	// newest-by-LSN rule ignores them at the next open).
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, ent := range entries {
			if lsn, ok := parseSnapshotName(ent.Name()); ok && lsn < snap.LSN {
				_ = os.Remove(filepath.Join(s.dir, ent.Name()))
			}
		}
	}
	return nil
}

// Close closes the WAL.
func (s *Store) Close() error { return s.log.Close() }
