package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	// legacyWALFile is the pre-segmentation single-file WAL name; an open
	// migrates it to the first segment.
	legacyWALFile = "wal.log"
	snapPrefix    = "snap-"
	snapSuffix    = ".snap"
)

// snapshotName is the file name of the snapshot covering WAL records
// through lsn; the zero-padded LSN makes lexical order equal LSN order.
func snapshotName(lsn int64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix)
}

// parseSnapshotName extracts the LSN from a snapshot file name.
func parseSnapshotName(name string) (int64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	lsn, err := strconv.ParseInt(mid, 10, 64)
	if err != nil || lsn < 0 {
		return 0, false
	}
	return lsn, true
}

// Options configure the storage lifecycle of a durability directory.
// The zero value reproduces the historical profile: segments rotate only
// at snapshots and one snapshot is retained, so disk usage stays bounded
// by one WAL span plus one snapshot.
type Options struct {
	// SegmentBytes is the WAL rotation threshold: the active segment is
	// sealed once its durable size reaches it. 0 rotates only at
	// snapshots.
	SegmentBytes int64
	// KeepSnapshots is the snapshot chain length retained by GC; values
	// below 1 mean 1. Older snapshots — and every WAL segment the oldest
	// retained snapshot covers — are deleted.
	KeepSnapshots int
}

// Store is an open durability directory: the segmented WAL for appending,
// the snapshot chain, and the retention manifest. One engine owns a store
// at a time.
type Store struct {
	dir  string
	log  *Log
	keep int
}

// OpenResult is what recovery found on disk.
type OpenResult struct {
	// Snapshot is the newest snapshot, nil when the directory has none.
	Snapshot *EngineSnapshot
	// SnapshotLSN is the last WAL record the snapshot covers (0 without a
	// snapshot).
	SnapshotLSN int64
	// Tail holds the WAL records after the snapshot, in LSN order; replay
	// applies exactly these.
	Tail []*Record
	// TruncatedAt is the offset within the final segment of a torn final
	// record that was discarded, -1 when the log ended cleanly. Only the
	// final segment may be torn; damage in a sealed segment is an error.
	TruncatedAt int64
	// Epoch is the highest primary epoch recovery saw: the snapshot's, or
	// any epoch record's in the tail, whichever is larger (0 when the node
	// was never part of a promoted replica set).
	Epoch int64
	// HeadLSN is the oldest WAL record still on disk after the GC resume
	// (the retained head); when the log is empty it is the next LSN.
	HeadLSN int64
}

// Open opens a durability directory with default Options.
func Open(dir string) (*Store, *OpenResult, error) { return OpenOptions(dir, Options{}) }

// OpenOptions opens (creating if needed) a durability directory: it loads
// the newest snapshot — which must be valid; a damaged newest snapshot is
// an error, not a silent fallback — replays the WAL segments in ordinal
// order, truncates a torn record at the end of the final segment, verifies
// LSN continuity, resumes any GC pass the manifest recorded, and returns
// the records recovery must replay.
func OpenOptions(dir string, opt Options) (*Store, *OpenResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	res := &OpenResult{TruncatedAt: -1}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	var snapLSNs []int64
	var ords []int64
	legacy := false
	for _, ent := range entries {
		if lsn, ok := parseSnapshotName(ent.Name()); ok {
			snapLSNs = append(snapLSNs, lsn)
		}
		if ord, ok := parseSegmentName(ent.Name()); ok {
			ords = append(ords, ord)
		}
		if ent.Name() == legacyWALFile {
			legacy = true
		}
	}

	// A pre-segmentation directory holds a single wal.log; it becomes the
	// first segment. Both formats at once is ambiguous and refused.
	if legacy {
		if len(ords) > 0 {
			return nil, nil, fmt.Errorf("persist: open %s: both %s and wal segments present", dir, legacyWALFile)
		}
		if err := os.Rename(filepath.Join(dir, legacyWALFile), filepath.Join(dir, segmentName(1))); err != nil {
			return nil, nil, fmt.Errorf("persist: migrate %s: %w", legacyWALFile, err)
		}
		if err := syncDir(dir); err != nil {
			return nil, nil, fmt.Errorf("persist: migrate %s: %w", legacyWALFile, err)
		}
		ords = append(ords, 1)
	}

	// Newest snapshot, by LSN embedded in the file name.
	if len(snapLSNs) > 0 {
		sort.Slice(snapLSNs, func(i, j int) bool { return snapLSNs[i] > snapLSNs[j] })
		newest := snapLSNs[0]
		f, err := os.Open(filepath.Join(dir, snapshotName(newest)))
		if err != nil {
			return nil, nil, fmt.Errorf("persist: open snapshot: %w", err)
		}
		snap, err := DecodeSnapshot(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("persist: snapshot %s: %w", snapshotName(newest), err)
		}
		if snap.LSN != newest {
			return nil, nil, fmt.Errorf("persist: snapshot %s claims LSN %d", snapshotName(newest), snap.LSN)
		}
		res.Snapshot = snap
		res.SnapshotLSN = newest
	}

	// Segment scan, in ordinal order. A crash can only tear the final
	// segment (rotation seals a segment with an fsync before the next is
	// created), and GC deletes oldest-first, so the ordinals must be
	// contiguous and every sealed segment must parse clean end to end.
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
	var records []*Record
	var segs []segment
	for i, ord := range ords {
		if i > 0 && ord != ords[i-1]+1 {
			return nil, nil, fmt.Errorf("persist: wal segment gap: %s follows %s", segmentName(ord), segmentName(ords[i-1]))
		}
		data, err := os.ReadFile(filepath.Join(dir, segmentName(ord)))
		if err != nil {
			return nil, nil, fmt.Errorf("persist: read wal segment: %w", err)
		}
		scan, err := scanRecords(data)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: segment %s: %w", segmentName(ord), err)
		}
		final := i == len(ords)-1
		if !final {
			if scan.truncatedAt >= 0 {
				return nil, nil, fmt.Errorf("persist: sealed wal segment %s torn at offset %d", segmentName(ord), scan.truncatedAt)
			}
			if len(scan.records) == 0 {
				return nil, nil, fmt.Errorf("persist: sealed wal segment %s is empty", segmentName(ord))
			}
		} else {
			res.TruncatedAt = scan.truncatedAt
		}
		first := int64(0) // empty final segment: fixed up to next below
		if len(scan.records) > 0 {
			first = scan.records[0].LSN
		}
		segs = append(segs, segment{ord: ord, first: first, size: scan.size})
		records = append(records, scan.records...)
	}

	// LSN continuity: every record follows its predecessor by exactly one,
	// across segment boundaries. A gap means a committed record is missing —
	// replaying across it would silently diverge, so it is a hard error.
	for i, rec := range records {
		if rec.LSN < 1 {
			return nil, nil, fmt.Errorf("persist: wal record %d has invalid LSN %d", i, rec.LSN)
		}
		if !validKind(rec.Kind) {
			return nil, nil, fmt.Errorf("persist: wal record LSN %d has unknown kind %q", rec.LSN, rec.Kind)
		}
		if i > 0 && rec.LSN != records[i-1].LSN+1 {
			return nil, nil, fmt.Errorf("persist: wal LSN gap: %d follows %d", rec.LSN, records[i-1].LSN)
		}
	}

	// The replay tail is everything the snapshot does not cover. A crash
	// between writing a snapshot and the GC pass leaves covered records in
	// the log; they are skipped here. What must not happen is a gap between
	// the snapshot and the first uncovered record.
	if res.Snapshot != nil {
		res.Epoch = res.Snapshot.Epoch
	}
	for _, rec := range records {
		if rec.Kind == KindEpoch && rec.Epoch > res.Epoch {
			res.Epoch = rec.Epoch
		}
		if rec.LSN > res.SnapshotLSN {
			res.Tail = append(res.Tail, rec)
		}
	}
	if len(res.Tail) > 0 && res.Tail[0].LSN != res.SnapshotLSN+1 {
		return nil, nil, fmt.Errorf("persist: wal starts at LSN %d but snapshot covers through %d", res.Tail[0].LSN, res.SnapshotLSN)
	}
	if res.Snapshot == nil && len(records) > 0 && records[0].LSN != 1 {
		return nil, nil, fmt.Errorf("persist: wal starts at LSN %d with no snapshot", records[0].LSN)
	}

	next := res.SnapshotLSN + 1
	if n := len(records); n > 0 && records[n-1].LSN+1 > next {
		next = records[n-1].LSN + 1
	}
	if n := len(segs); n > 0 && segs[n-1].first == 0 {
		segs[n-1].first = next
	}
	log, err := openLog(dir, segs, next)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: open wal: %w", err)
	}
	log.SetSegmentBytes(opt.SegmentBytes)
	st := &Store{dir: dir, log: log, keep: opt.KeepSnapshots}

	// GC resume: the manifest records the floor a previous (possibly
	// interrupted) GC pass committed to. The floor is clamped to the newest
	// snapshot that actually validated above — the manifest authorizes
	// resuming deletions, never deleting past present coverage.
	if m := readManifest(dir); m != nil {
		floor := m.CoveredLSN
		if floor > res.SnapshotLSN {
			floor = res.SnapshotLSN
		}
		if floor > 0 {
			st.removeSnapshotsBelow(floor)
			log.removeCoveredThrough(floor)
		}
	}
	res.HeadLSN = log.headLSN()
	return st, res, nil
}

// Dir returns the durability directory path.
func (s *Store) Dir() string { return s.dir }

// Append writes one record to the WAL and returns its LSN.
func (s *Store) Append(rec *Record) (int64, error) { return s.log.Append(rec) }

// LastLSN returns the LSN of the most recent record (snapshot-covered or
// appended), 0 when nothing was ever logged.
func (s *Store) LastLSN() int64 { return s.log.LastLSN() }

// HeadLSN returns the oldest WAL record still on disk (the retained
// head); when the log holds no durable records it is the next LSN.
func (s *Store) HeadLSN() int64 { return s.log.headLSN() }

// DisableSync turns off per-record fsync (tests and benchmarks).
func (s *Store) DisableSync() { s.log.DisableSync() }

// SetGroupCommit sets the WAL batch size (n > 1 buffers records and
// fsyncs once per batch; n <= 1 restores per-record durability), flushing
// any buffered records first.
func (s *Store) SetGroupCommit(n int) error { return s.log.SetGroupCommit(n) }

// Flush forces any buffered group-commit WAL records to stable storage.
func (s *Store) Flush() error { return s.log.Flush() }

// SetFailpoint installs (or clears, with nil) the WAL fault-injection
// hook; see Failpoint.
func (s *Store) SetFailpoint(fp Failpoint) { s.log.SetFailpoint(fp) }

// SetFlushHook installs (or clears, with nil) the durable-batch observer;
// see FlushHook.
func (s *Store) SetFlushHook(h FlushHook) { s.log.SetFlushHook(h) }

// AppendRaw appends already-framed WAL bytes verbatim (see Log.AppendRaw);
// replication followers write shipped primary frames with it.
func (s *Store) AppendRaw(data []byte, first, last int64) error {
	return s.log.AppendRaw(data, first, last)
}

// durableWAL reads the durable WAL bytes — every segment, the final one
// clamped to its durable size (a torn crash image or an injected torn
// batch past it is not yet part of the log) — as one contiguous image.
func (s *Store) durableWAL() ([]byte, error) {
	var out []byte
	for i := range s.log.segs {
		seg := &s.log.segs[i]
		if seg.size == 0 {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, segmentName(seg.ord)))
		if err != nil {
			return nil, fmt.Errorf("persist: read wal segment: %w", err)
		}
		if int64(len(data)) > seg.size {
			data = data[:seg.size]
		}
		out = append(out, data...)
	}
	return out, nil
}

// ReadFramesFrom reads the durable WAL frames with LSN >= from, split
// into chunks of at most maxChunk bytes at frame boundaries. It serves a
// replication follower's backlog request; the caller must ensure no
// concurrent append (the commit pipeline's serialization point). A
// position older than the retained head — its segments were GC'd under
// snapshot coverage — fails with a TruncatedHeadError so the caller can
// fall back to a snapshot bootstrap; a position beyond the end means the
// requester is ahead of this log and is a plain error.
func (s *Store) ReadFramesFrom(from int64, maxChunk int) ([]WALChunk, error) {
	if from < 1 {
		from = 1
	}
	data, err := s.durableWAL()
	if err != nil {
		return nil, err
	}
	recs, offs, err := ParseFrames(data)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		// nextDurable is the LSN the next flushed record will carry;
		// buffered group-commit records are not durable yet.
		nextDurable := s.log.next - int64(len(s.log.bufLSNs))
		if from == nextDurable {
			return nil, nil // empty log, requester is current
		}
		if from < nextDurable {
			return nil, &TruncatedHeadError{From: from, Head: nextDurable}
		}
		return nil, fmt.Errorf("persist: wal position %d is beyond the durable end %d", from, nextDurable-1)
	}
	first, last := recs[0].LSN, recs[len(recs)-1].LSN
	if from < first {
		return nil, &TruncatedHeadError{From: from, Head: first}
	}
	if from > last+1 {
		return nil, fmt.Errorf("persist: wal position %d is beyond the durable end %d", from, last)
	}
	if from == last+1 {
		return nil, nil // requester is current
	}
	start := offs[from-first]
	return SplitFrames(data[start:], maxChunk)
}

// writeSnapshotFile atomically installs raw snapshot bytes as
// snapshotName(lsn): temp file, fsync, rename, directory fsync.
func (s *Store) writeSnapshotFile(write func(*os.File) error, lsn int64) error {
	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("persist: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	final := filepath.Join(s.dir, snapshotName(lsn))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("persist: snapshot dir sync: %w", err)
	}
	return nil
}

// SaveSnapshot atomically installs snap as the newest snapshot — temp
// file, fsync, rename, directory fsync — stamped with the durable last
// LSN, then seals the active WAL segment and runs the retention GC:
// snapshots beyond the keep-count and WAL segments covered by the oldest
// retained snapshot are deleted, with the intent manifest made durable
// first. Buffered group-commit records are flushed before stamping, so
// the snapshot LSN never runs ahead of the log on disk.
func (s *Store) SaveSnapshot(snap *EngineSnapshot) error {
	if err := s.log.Flush(); err != nil {
		return err
	}
	snap.LSN = s.log.LastLSN()
	if err := s.writeSnapshotFile(func(f *os.File) error { return EncodeSnapshot(f, snap) }, snap.LSN); err != nil {
		return err
	}
	if err := s.log.Rotate(); err != nil {
		return err
	}
	s.gc()
	return nil
}

// snapshotLSNs lists the snapshot versions on disk, oldest first.
func (s *Store) snapshotLSNs() []int64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var lsns []int64
	for _, ent := range entries {
		if lsn, ok := parseSnapshotName(ent.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns
}

// removeSnapshotsBelow deletes snapshot files older than the floor.
// Removal failures are harmless (the newest-by-LSN rule ignores them at
// the next open, and the next GC pass retries).
func (s *Store) removeSnapshotsBelow(floor int64) {
	for _, lsn := range s.snapshotLSNs() {
		if lsn < floor {
			_ = os.Remove(filepath.Join(s.dir, snapshotName(lsn)))
		}
	}
}

// gc compacts the snapshot chain to the keep-count and deletes the WAL
// segments covered by the oldest retained snapshot. The manifest — the
// durable record of what is being deleted and why it is safe — is written
// and fsynced before any file is removed: a crash at any byte of the pass
// leaves either the old manifest (the pass is simply redone later) or the
// new one (the open-time resume completes the deletions). If the manifest
// write fails nothing is deleted.
func (s *Store) gc() {
	keep := s.keep
	if keep < 1 {
		keep = 1
	}
	lsns := s.snapshotLSNs()
	if len(lsns) == 0 {
		return
	}
	retained := lsns
	if len(retained) > keep {
		retained = retained[len(retained)-keep:]
	}
	floor := retained[0]
	if err := writeManifest(s.dir, &Manifest{Version: 1, CoveredLSN: floor, Snapshots: retained}); err != nil {
		return
	}
	s.removeSnapshotsBelow(floor)
	s.log.removeCoveredThrough(floor)
}

// NewestSnapshot returns the newest durable snapshot's verbatim bytes and
// the LSN it covers; ok is false when the directory has none. The bytes
// are shipped to bootstrap a replication follower that fell behind the
// retained head, and are validated on the installing side.
func (s *Store) NewestSnapshot() (data []byte, lsn int64, ok bool, err error) {
	lsns := s.snapshotLSNs()
	if len(lsns) == 0 {
		return nil, 0, false, nil
	}
	lsn = lsns[len(lsns)-1]
	data, err = os.ReadFile(filepath.Join(s.dir, snapshotName(lsn)))
	if err != nil {
		return nil, 0, false, fmt.Errorf("persist: read snapshot: %w", err)
	}
	return data, lsn, true, nil
}

// InstallSnapshot durably installs shipped snapshot bytes as the newest
// snapshot and resets the WAL to continue from lsn+1: a replication
// follower whose resume position predates the primary's retained head
// adopts the primary's snapshot wholesale, then converges byte-identically
// from that point via the ordinary frame stream. The bytes are validated
// before anything is touched; the old segments are removed and a fresh
// one started at the next ordinal. Returns the decoded snapshot for the
// engine to load.
func (s *Store) InstallSnapshot(data []byte, lsn int64) (*EngineSnapshot, error) {
	snap, err := DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("persist: install snapshot: %w", err)
	}
	if snap.LSN != lsn {
		return nil, fmt.Errorf("persist: install snapshot: bytes claim LSN %d, shipped as %d", snap.LSN, lsn)
	}
	if err := s.writeSnapshotFile(func(f *os.File) error {
		_, werr := f.Write(data)
		return werr
	}, lsn); err != nil {
		return nil, err
	}
	// Replace the whole log with a fresh segment at the next ordinal. Any
	// buffered records are obsolete (the snapshot supersedes the follower's
	// entire state).
	s.log.buf = s.log.buf[:0]
	s.log.bufLSNs = s.log.bufLSNs[:0]
	s.log.bufOffs = s.log.bufOffs[:0]
	if err := s.log.f.Close(); err != nil {
		return nil, fmt.Errorf("persist: install snapshot: %w", err)
	}
	ord := s.log.active().ord + 1
	for i := range s.log.segs {
		_ = os.Remove(filepath.Join(s.dir, segmentName(s.log.segs[i].ord)))
	}
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(ord)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: install snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: install snapshot: %w", err)
	}
	s.log.f = f
	s.log.segs = []segment{{ord: ord, first: lsn + 1, size: 0}}
	s.log.next = lsn + 1
	s.log.broken = nil
	s.removeSnapshotsBelow(lsn)
	_ = writeManifest(s.dir, &Manifest{Version: 1, CoveredLSN: lsn, Snapshots: []int64{lsn}})
	return snap, nil
}

// StorageStats summarizes what the lifecycle subsystem keeps on disk.
type StorageStats struct {
	// Segments is the number of WAL segment files; WALBytes their total
	// durable size.
	Segments int
	WALBytes int64
	// Snapshots is the snapshot chain length; SnapshotBytes its total
	// file size.
	Snapshots     int
	SnapshotBytes int64
	// HeadLSN is the oldest WAL record on disk, LastLSN the newest
	// assigned (buffered included).
	HeadLSN int64
	LastLSN int64
}

// Stats reports the storage footprint. Like every Store method it runs at
// the owner's serialization point (no concurrent append).
func (s *Store) Stats() (StorageStats, error) {
	st := StorageStats{
		Segments: len(s.log.segs),
		WALBytes: s.log.walBytes(),
		HeadLSN:  s.log.headLSN(),
		LastLSN:  s.log.LastLSN(),
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return st, fmt.Errorf("persist: stats: %w", err)
	}
	for _, ent := range entries {
		if _, ok := parseSnapshotName(ent.Name()); !ok {
			continue
		}
		st.Snapshots++
		if info, err := ent.Info(); err == nil {
			st.SnapshotBytes += info.Size()
		}
	}
	return st, nil
}

// WALBytes sums the WAL segment file sizes in a durability directory
// without opening it as a store (test and tooling helper).
func WALBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, ent := range entries {
		if _, ok := parseSegmentName(ent.Name()); !ok {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return 0, err
		}
		n += info.Size()
	}
	return n, nil
}

// Close closes the WAL.
func (s *Store) Close() error { return s.log.Close() }
