package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// emitRec builds a distinguishable emit record.
func emitRec(ts int64) *Record {
	return &Record{Kind: KindEmit, TS: ts, Events: [][]json.RawMessage{{json.RawMessage(`"e"`)}}}
}

// openGroupStore opens dir with fsync off and the given batch size.
func openGroupStore(t *testing.T, dir string, group int) *Store {
	t.Helper()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.DisableSync()
	if group > 1 {
		if err := st.SetGroupCommit(group); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// reopenRecords closes nothing; it opens dir fresh and returns the
// replayable record list.
func reopenRecords(t *testing.T, dir string) []*Record {
	t.Helper()
	st, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	return res.Tail
}

// TestGroupCommitSameBytes is the equivalence core: the same record
// sequence appended with group commit produces a byte-identical WAL file
// to per-record appends, once flushed.
func TestGroupCommitSameBytes(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for dir, group := range map[string]int{dirA: 1, dirB: 8} {
		st := openGroupStore(t, dir, group)
		for i := 0; i < 20; i++ {
			if _, err := st.Append(emitRec(int64(i + 1))); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil { // Close flushes the partial batch
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(filepath.Join(dirA, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || string(a) != string(b) {
		t.Fatalf("wal bytes differ: per-record %d bytes, grouped %d bytes", len(a), len(b))
	}
}

// TestGroupCommitLSNsAndAutoFlush checks LSN assignment is immediate
// (LastLSN includes buffered records) and that the batch self-flushes at
// the group size.
func TestGroupCommitLSNsAndAutoFlush(t *testing.T) {
	dir := t.TempDir()
	st := openGroupStore(t, dir, 4)
	for i := 0; i < 6; i++ {
		lsn, err := st.Append(emitRec(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != int64(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
		if st.LastLSN() != lsn {
			t.Fatalf("LastLSN = %d after appending %d", st.LastLSN(), lsn)
		}
	}
	// 6 appends with group 4: records 1-4 auto-flushed, 5-6 still buffered.
	if got := reopenRecords(t, dir); len(got) != 4 {
		t.Fatalf("durable records before flush = %d, want 4", len(got))
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := reopenRecords(t, dir); len(got) != 6 {
		t.Fatalf("durable records after flush = %d, want 6", len(got))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCrashLosesOnlyTail models a crash with a part-full
// buffer (the store is simply never flushed or closed): recovery sees
// exactly the flushed prefix, with no torn tail.
func TestGroupCommitCrashLosesOnlyTail(t *testing.T) {
	dir := t.TempDir()
	st := openGroupStore(t, dir, 5)
	for i := 0; i < 13; i++ {
		if _, err := st.Append(emitRec(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop the store on the floor (10 records flushed, 3 buffered).
	st2, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if res.TruncatedAt >= 0 {
		t.Fatal("clean group-commit crash must not leave a torn tail")
	}
	if len(res.Tail) != 10 {
		t.Fatalf("recovered %d records, want the 10 flushed ones", len(res.Tail))
	}
	for i, rec := range res.Tail {
		if rec.LSN != int64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
}

// TestGroupCommitFailpointTornBatch injects an append fault mid-batch:
// the flush must poison the log, leave the pre-fault prefix plus a torn
// frame, and recovery must truncate back to the last whole record.
func TestGroupCommitFailpointTornBatch(t *testing.T) {
	dir := t.TempDir()
	st := openGroupStore(t, dir, 4)
	boom := errors.New("disk gone")
	st.SetFailpoint(func(op string, lsn int64) error {
		if op == "append" && lsn == 3 {
			return boom
		}
		return nil
	})
	var appendErr error
	for i := 0; i < 4; i++ {
		if _, err := st.Append(emitRec(int64(i + 1))); err != nil {
			appendErr = err
			break
		}
	}
	if !errors.Is(appendErr, boom) {
		t.Fatalf("batch flush did not surface the fault: %v", appendErr)
	}
	// Poisoned: further appends refuse.
	if _, err := st.Append(emitRec(99)); !errors.Is(err, boom) {
		t.Fatalf("poisoned log accepted an append: %v", err)
	}
	// Poisoned log closes clean (the error already surfaced).
	if err := st.Close(); err != nil {
		t.Fatalf("Close after poison: %v", err)
	}
	st2, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if res.TruncatedAt < 0 {
		t.Fatal("torn batch tail not detected")
	}
	if len(res.Tail) != 2 {
		t.Fatalf("recovered %d records, want the 2 before the fault", len(res.Tail))
	}
}

// TestGroupCommitSyncFault checks a sync-stage fault poisons the whole
// batch even though the frames were written.
func TestGroupCommitSyncFault(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetGroupCommit(3); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("fsync gone")
	st.SetFailpoint(func(op string, lsn int64) error {
		if op == "sync" && lsn == 2 {
			return boom
		}
		return nil
	})
	var appendErr error
	for i := 0; i < 3; i++ {
		if _, err := st.Append(emitRec(int64(i + 1))); err != nil {
			appendErr = err
			break
		}
	}
	if !errors.Is(appendErr, boom) {
		t.Fatalf("sync fault not surfaced: %v", appendErr)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close after sync poison: %v", err)
	}
}

// TestGroupCommitResetDropsBuffer checks a snapshot reset discards the
// buffered suffix: the snapshot was stamped with LastLSN (which includes
// the buffer), so the next append continues the sequence.
func TestGroupCommitResetDropsBuffer(t *testing.T) {
	dir := t.TempDir()
	st := openGroupStore(t, dir, 10)
	for i := 0; i < 7; i++ {
		if _, err := st.Append(emitRec(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SaveSnapshot(testSnapshot(st.LastLSN())); err != nil {
		t.Fatal(err)
	}
	if lsn, err := st.Append(emitRec(100)); err != nil || lsn != 8 {
		t.Fatalf("post-reset append: lsn=%d err=%v, want 8", lsn, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if res.Snapshot == nil || res.Snapshot.LSN != 7 {
		t.Fatalf("snapshot not at LSN 7: %+v", res.Snapshot)
	}
	if len(res.Tail) != 1 || res.Tail[0].LSN != 8 {
		t.Fatalf("post-snapshot tail = %+v, want one record at LSN 8", res.Tail)
	}
}

// TestSetGroupCommitFlushesPending checks switching modes flushes the
// buffer first, so no record straddles the mode change.
func TestSetGroupCommitFlushesPending(t *testing.T) {
	dir := t.TempDir()
	st := openGroupStore(t, dir, 8)
	for i := 0; i < 3; i++ {
		if _, err := st.Append(emitRec(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	if got := reopenRecords(t, dir); len(got) != 0 {
		t.Fatalf("records flushed early: %d", len(got))
	}
	if err := st.SetGroupCommit(1); err != nil {
		t.Fatal(err)
	}
	if got := reopenRecords(t, dir); len(got) != 3 {
		t.Fatalf("mode change did not flush: %d records", len(got))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInitRecordDisableIndexRoundTrip checks the scheduling-index flag
// survives the WAL.
func TestInitRecordDisableIndexRoundTrip(t *testing.T) {
	for _, disabled := range []bool{false, true} {
		t.Run(fmt.Sprintf("disabled=%v", disabled), func(t *testing.T) {
			dir := t.TempDir()
			st, _, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{Start: 0, DisableIndex: disabled}}); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			recs := reopenRecords(t, dir)
			if len(recs) != 1 || recs[0].Init == nil {
				t.Fatalf("bad replay: %+v", recs)
			}
			if recs[0].Init.DisableIndex != disabled {
				t.Fatalf("DisableIndex = %v, want %v", recs[0].Init.DisableIndex, disabled)
			}
		})
	}
}
