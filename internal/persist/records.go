package persist

import (
	"encoding/json"
	"fmt"

	"ptlactive/internal/histio"
)

// Record kinds. The WAL logs the committed operations of the engine's
// external interface; action-initiated cascades are not logged — replaying
// the external operation through the normal sweep path re-derives them.
const (
	// KindInit opens a fresh log: the engine construction parameters.
	KindInit = "init"
	// KindAddRule is a trigger or constraint registration.
	KindAddRule = "addrule"
	// KindExec is a transaction commit attempt (including attempts the
	// constraints rejected: replay re-evaluates the constraints and
	// re-derives the abort state).
	KindExec = "exec"
	// KindAbort is an explicit transaction abort.
	KindAbort = "abort"
	// KindEmit is an event-only system state.
	KindEmit = "emit"
	// KindFlush is a batched temporal-component invocation.
	KindFlush = "flush"
	// KindCompact discards fully-processed history prefix states.
	KindCompact = "compact"
	// KindPrune discards executed-predicate records older than Arg.
	KindPrune = "prune"
	// KindRevive lifts the named rule's quarantine (Engine.ReviveRule).
	// Revival re-enables suppressed actions, so replay must re-apply it at
	// the same point to reproduce the original run.
	KindRevive = "revive"
	// KindEpoch fences a leadership change: the record stamps the primary
	// epoch (Record.Epoch) into the log at the point a node became primary.
	// A replication follower refuses frames from any epoch older than the
	// highest it has applied, so a deposed primary's stale tail cannot
	// overwrite a promoted successor's history.
	KindEpoch = "epoch"
)

// InitRecord carries the Config parameters that shape observable engine
// behavior. Runtime-only knobs (Workers, OnFiring, Registry) are not
// persisted: the engine's results are independent of the worker count by
// construction, and callbacks/queries are re-supplied at restore.
type InitRecord struct {
	Initial     map[string]json.RawMessage `json:"initial,omitempty"`
	Start       int64                      `json:"start"`
	TrackItems  []string                   `json:"track,omitempty"`
	DisableFast bool                       `json:"nofast,omitempty"`
	// DisableIndex (Config.DisableReadSetIndex) changes which states each
	// rule's evaluator actually steps, so replay must match; logs written
	// before the index existed decode to false, the indexed default, and
	// replay equivalently because firings are index-independent.
	DisableIndex bool `json:"noindex,omitempty"`
	CascadeLimit int  `json:"cascade,omitempty"`
	// MaxRuleFailures and SweepBudget shape which actions run and which
	// sweeps fail, so replay must use the original values; both are
	// omitted (and decode to "disabled") in logs written before they
	// existed.
	MaxRuleFailures int   `json:"maxfail,omitempty"`
	SweepBudget     int64 `json:"budget,omitempty"`
	// HistoryWindow and SpillHistory are the history-retention policy:
	// they shape which point-in-time reads answer, so replay must use the
	// original values. Both decode to "retain everything" in logs written
	// before retention existed.
	HistoryWindow int64 `json:"histwin,omitempty"`
	SpillHistory  bool  `json:"spill,omitempty"`
}

// Record is one WAL entry. Kind selects which of the payload fields are
// meaningful; unused fields stay at their zero values and are omitted from
// the JSON encoding.
type Record struct {
	LSN  int64  `json:"lsn"`
	Kind string `json:"kind"`

	// KindInit.
	Init *InitRecord `json:"init,omitempty"`

	// KindAddRule. Cond is the engine-internal condition in the codec of
	// internal/ptl — for constraints it is already the negated form the
	// engine evaluates.
	Name       string          `json:"name,omitempty"`
	Cond       json.RawMessage `json:"cond,omitempty"`
	Constraint bool            `json:"constraint,omitempty"`
	Sched      int             `json:"sched,omitempty"`

	// KindExec, KindAbort, KindEmit. Events holds only the extra events the
	// caller supplied; the synthesized commit/abort events are re-derived
	// during replay.
	Txn     int64                      `json:"txn,omitempty"`
	TS      int64                      `json:"ts,omitempty"`
	Updates map[string]json.RawMessage `json:"updates,omitempty"`
	Deletes []string                   `json:"deletes,omitempty"`
	Events  [][]json.RawMessage        `json:"events,omitempty"`

	// KindPrune.
	Arg int64 `json:"arg,omitempty"`

	// KindEpoch: the primary epoch in force from this record on.
	Epoch int64 `json:"epoch,omitempty"`
}

// validKind reports whether k is a known record kind.
func validKind(k string) bool {
	switch k {
	case KindInit, KindAddRule, KindExec, KindAbort, KindEmit, KindFlush, KindCompact, KindPrune, KindRevive, KindEpoch:
		return true
	}
	return false
}

// RuleSnapshot is one registered rule in snapshot form: its condition (the
// engine-internal, possibly negated formula), registration parameters, the
// history cursor, the compiled evaluator's incremental state — the
// F_{g,i} registers whose boundedness Theorem 1 establishes — and the
// rule's health record. Quarantine shapes which actions run, so recovery
// from a snapshot must restore it or replay would re-run actions the
// original engine suppressed.
type RuleSnapshot struct {
	Name       string          `json:"name"`
	Cond       json.RawMessage `json:"cond"`
	Constraint bool            `json:"constraint,omitempty"`
	Sched      int             `json:"sched,omitempty"`
	Cursor     int             `json:"cursor"`
	Eval       json.RawMessage `json:"eval"`

	// Quiescent-replay memo (see adb rule classification): the outcome of
	// the rule's last evaluation at a commit state. Restoring it keeps a
	// recovered engine's evaluation schedule identical to the original's —
	// without it the first post-recovery commit would re-evaluate rules
	// the original engine replayed. Absent in older snapshots (decodes to
	// invalid), which only costs one re-evaluation per rule.
	MemoValid    bool                         `json:"memoValid,omitempty"`
	MemoFired    bool                         `json:"memoFired,omitempty"`
	MemoBindings []map[string]json.RawMessage `json:"memoBindings,omitempty"`

	// Health fields. LastFailure keeps only the error text: typed error
	// identity (errors.Is/As against the sandbox types) does not survive a
	// snapshot, the forensic message does.
	Quarantined bool   `json:"quarantined,omitempty"`
	ConsecFails int    `json:"consecFails,omitempty"`
	TotalFails  int    `json:"totalFails,omitempty"`
	LastFailure string `json:"lastFailure,omitempty"`
	LastFailAt  int64  `json:"lastFailAt,omitempty"`
}

// IntervalJSON is one auxiliary-relation interval row in wire form.
type IntervalJSON struct {
	Tuple []json.RawMessage `json:"tuple"`
	Start int64             `json:"start"`
	End   int64             `json:"end"`
}

// AuxSnapshot is the captured state of one tracked item's auxiliary
// relation (validity intervals plus the capture watermark).
type AuxSnapshot struct {
	Item        string         `json:"item"`
	Rows        []IntervalJSON `json:"rows,omitempty"`
	LastCapture int64          `json:"last"`
	Captured    bool           `json:"captured"`
}

// FiringSnapshot is one recorded rule firing in wire form.
type FiringSnapshot struct {
	Rule       string                     `json:"rule"`
	Binding    map[string]json.RawMessage `json:"binding,omitempty"`
	Time       int64                      `json:"time"`
	StateIndex int                        `json:"state"`
}

// ExecutionSnapshot is one executed-predicate record in wire form.
type ExecutionSnapshot struct {
	Rule   string            `json:"rule"`
	Params []json.RawMessage `json:"params,omitempty"`
	Time   int64             `json:"time"`
}

// EngineSnapshot is the full durable state of an engine at a quiescent
// point (no sweep in progress, no pending actions): the retained history
// window, the rule set with evaluator registers, the auxiliary relations,
// and the firing/execution logs. LSN is the last WAL record the snapshot
// covers; recovery replays only records after it.
type EngineSnapshot struct {
	Init *InitRecord `json:"init"`
	LSN  int64       `json:"lsn"`
	// Epoch is the primary epoch in force at the snapshot (see KindEpoch):
	// a WAL reset discards the epoch records, so the fencing state must
	// travel with the snapshot. Absent in older snapshots (decodes to 0,
	// the never-promoted epoch).
	Epoch     int64               `json:"epoch,omitempty"`
	History   []histio.StateJSON  `json:"history"`
	Base      int                 `json:"base"`
	Now       int64               `json:"now"`
	NextTxn   int64               `json:"nextTxn"`
	EvalSteps int64               `json:"evalSteps"`
	Rules     []RuleSnapshot      `json:"rules,omitempty"`
	Firings   []FiringSnapshot    `json:"firings,omitempty"`
	Execs     []ExecutionSnapshot `json:"execs,omitempty"`
	Tracked   []AuxSnapshot       `json:"tracked,omitempty"`
}

// validate checks the structural invariants recovery depends on.
func (s *EngineSnapshot) validate() error {
	if s.Init == nil {
		return fmt.Errorf("persist: snapshot missing init record")
	}
	if len(s.History) == 0 {
		return fmt.Errorf("persist: snapshot has no history states")
	}
	if s.Base < 0 {
		return fmt.Errorf("persist: snapshot base index %d negative", s.Base)
	}
	if s.LSN < 0 {
		return fmt.Errorf("persist: snapshot LSN %d negative", s.LSN)
	}
	for i, r := range s.Rules {
		if r.Name == "" {
			return fmt.Errorf("persist: snapshot rule %d has empty name", i)
		}
		if r.Cursor < 0 || r.Cursor > len(s.History) {
			return fmt.Errorf("persist: snapshot rule %s cursor %d out of range [0, %d]", r.Name, r.Cursor, len(s.History))
		}
	}
	return nil
}
