// Package persist is the durability subsystem: a versioned snapshot
// format plus an append-only, checksummed write-ahead log. A snapshot
// captures exactly the bounded incremental state of Section 5 (Theorem 1
// is what keeps it small); the WAL records every committed operation
// since, so recovery loads the latest valid snapshot and replays only the
// WAL tail through the engine's normal sweep path.
//
// WAL framing, per record:
//
//	[4-byte magic "PWAL"] [4-byte LE payload length] [4-byte LE CRC32-IEEE
//	of the payload] [JSON payload]
//
// Records carry strictly increasing LSNs assigned at append time; a gap
// in the sequence is a hard error (a silently missing record would break
// firing equivalence). The log is written as numbered segment files
// (wal.000001, wal.000002, ...) rotated at a configurable byte threshold;
// recovery replays them in ordinal order. A torn final record — the only
// damage a crash mid-append can cause — can exist only in the last
// segment; it is truncated and reported. Damage anywhere else (including
// any malformed byte in a sealed segment) is surfaced as an error and
// never skipped.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

var walMagic = []byte("PWAL")

const (
	headerLen = 12 // magic + length + crc
	// maxRecordLen bounds a single record (64 MiB); a larger length field
	// is treated as corruption rather than attempted as an allocation.
	maxRecordLen = 1 << 26
)

// Failpoint injects storage faults for testing the engine's degraded
// mode. It is consulted at op "append" (before the frame is written) and
// op "sync" (after the write, before the fsync) with the LSN being
// appended; a non-nil return injects the fault. An injected append fault
// additionally leaves a partial frame on disk — exactly the torn image a
// crash mid-write produces — so recovery's truncation path is exercised
// end to end.
type Failpoint func(op string, lsn int64) error

// FlushHook observes every batch of frames the moment it becomes durable
// (written and fsynced): data is the verbatim frame bytes, first/last the
// contiguous LSN range they cover. It is the WAL-shipping tap of the
// replication layer — because the log is byte-stable, forwarding exactly
// these bytes to a follower reproduces the primary's log bit for bit.
// The hook runs synchronously inside Append/Flush on the appender's
// goroutine; data is only valid for the duration of the call (group
// commit reuses the batch buffer), so consumers must copy to retain it.
type FlushHook func(data []byte, first, last int64)

// segment is one WAL segment file. first is the LSN of the segment's
// first record; for an empty segment it is the LSN the first record will
// get. size counts durable bytes (a torn crash image past size is not
// part of the log).
type segment struct {
	ord   int64
	first int64
	size  int64
}

// segmentName is the file name of segment ord; the zero-padded ordinal
// makes lexical order equal replay order for the first million segments
// (recovery sorts numerically regardless).
func segmentName(ord int64) string { return fmt.Sprintf("wal.%06d", ord) }

// parseSegmentName extracts the ordinal from a segment file name. The
// suffix must be all digits, so the legacy single-file name "wal.log"
// does not parse as a segment.
func parseSegmentName(name string) (int64, bool) {
	const prefix = "wal."
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return 0, false
	}
	var ord int64
	for _, c := range name[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		ord = ord*10 + int64(c-'0')
		if ord > 1<<40 {
			return 0, false
		}
	}
	if ord < 1 {
		return 0, false
	}
	return ord, true
}

// Log is an append-only write-ahead log backed by a directory of numbered
// segment files; appends go to the last (active) segment, which rotates
// once it reaches the configured byte threshold.
//
// With group commit enabled (SetGroupCommit n, n > 1), appended frames are
// buffered in memory and written — and fsynced — as one batch every n
// records, or on an explicit Flush, a snapshot, or Close. A crash loses at
// most the buffered suffix; the flushed prefix recovers exactly, so the
// durability contract weakens from "every record" to "every flushed
// record" in exchange for one write+fsync per batch.
type Log struct {
	dir  string
	f    *os.File // active (last) segment, open for append
	segs []segment
	next int64 // next LSN to assign
	sync bool
	// segBytes is the rotation threshold: once the active segment's
	// durable size reaches it, the segment is sealed and a new one
	// started. 0 disables size-based rotation (snapshots still rotate).
	segBytes int64
	fail     Failpoint
	// Group-commit state: group is the batch size (<=1 means per-record),
	// buf accumulates framed records, bufLSNs/bufOffs track each buffered
	// record's LSN and frame offset within buf (for fault injection).
	group   int
	buf     []byte
	bufLSNs []int64
	bufOffs []int
	// broken poisons the log after a failed append, fsync or rotation: the
	// file tail is in an unknown state, so further appends could land after
	// garbage and turn a clean torn tail into mid-log corruption.
	broken error
	// flushHook, when set, observes every durable batch (see FlushHook).
	flushHook FlushHook
}

// SetFailpoint installs (or clears, with nil) the fault-injection hook.
func (l *Log) SetFailpoint(fp Failpoint) { l.fail = fp }

// SetFlushHook installs (or clears, with nil) the durable-batch observer.
func (l *Log) SetFlushHook(h FlushHook) { l.flushHook = h }

// openLog opens the log over the scanned segment set. segs must be the
// segments on disk in ordinal order with their durable sizes; the final
// one is opened for appending, truncated to its durable size (discarding
// a torn crash image). next is the LSN the next append gets. When segs is
// empty a fresh first segment is created.
func openLog(dir string, segs []segment, next int64) (*Log, error) {
	if len(segs) == 0 {
		segs = []segment{{ord: 1, first: next, size: 0}}
	}
	act := segs[len(segs)-1]
	f, err := os.OpenFile(filepath.Join(dir, segmentName(act.ord)), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(act.size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(act.size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{dir: dir, f: f, segs: segs, next: next, sync: true}, nil
}

// active returns the segment appends go to.
func (l *Log) active() *segment { return &l.segs[len(l.segs)-1] }

// DisableSync turns off the per-record fsync; crash tests and benchmarks
// use it, production durability should not.
func (l *Log) DisableSync() { l.sync = false }

// SetSegmentBytes sets the rotation threshold (0 disables size-based
// rotation).
func (l *Log) SetSegmentBytes(n int64) { l.segBytes = n }

// LastLSN returns the LSN of the most recently appended record — buffered
// records included — or 0 when the log is empty.
func (l *Log) LastLSN() int64 { return l.next - 1 }

// headLSN returns the LSN of the oldest record still on disk; when the
// log holds no durable records it is the LSN the next flushed record will
// carry.
func (l *Log) headLSN() int64 { return l.segs[0].first }

// walBytes returns the total durable bytes across all segments.
func (l *Log) walBytes() int64 {
	var n int64
	for i := range l.segs {
		n += l.segs[i].size
	}
	return n
}

// SetGroupCommit sets the batch size: n > 1 buffers appended records and
// writes+fsyncs them together every n records (or on Flush / snapshot /
// Close); n <= 1 restores per-record durability. Any buffered records are
// flushed before the mode changes.
func (l *Log) SetGroupCommit(n int) error {
	if err := l.Flush(); err != nil {
		return err
	}
	l.group = n
	return nil
}

// frame encodes rec (with its LSN already assigned) into WAL frame bytes.
func frame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("persist: encode record: %w", err)
	}
	if len(payload) > maxRecordLen {
		return nil, fmt.Errorf("persist: record of %d bytes exceeds limit %d", len(payload), maxRecordLen)
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf, walMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(payload))
	copy(buf[headerLen:], payload)
	return buf, nil
}

// Append assigns the next LSN to rec, frames and checksums it, and either
// writes it durably (per-record mode: write + fsync unless disabled) or
// buffers it for the next group-commit Flush. The assigned LSN is
// returned. After a write or fsync failure the log is poisoned: every
// further Append fails with the original error, because the file tail is
// in an unknown state.
func (l *Log) Append(rec *Record) (int64, error) {
	if l.broken != nil {
		return 0, l.broken
	}
	rec.LSN = l.next
	buf, err := frame(rec)
	if err != nil {
		return 0, err
	}
	if l.group > 1 {
		l.bufOffs = append(l.bufOffs, len(l.buf))
		l.buf = append(l.buf, buf...)
		l.bufLSNs = append(l.bufLSNs, rec.LSN)
		l.next++
		if len(l.bufLSNs) >= l.group {
			if err := l.Flush(); err != nil {
				return 0, err
			}
		}
		return rec.LSN, nil
	}
	if l.fail != nil {
		if err := l.fail("append", rec.LSN); err != nil {
			// Leave the torn image a crash mid-write produces.
			if n := len(buf) / 2; n > 0 {
				_, _ = l.f.Write(buf[:n])
			}
			l.broken = fmt.Errorf("persist: append: %w", err)
			return 0, l.broken
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		l.broken = fmt.Errorf("persist: append: %w", err)
		return 0, l.broken
	}
	if l.sync {
		if l.fail != nil {
			if err := l.fail("sync", rec.LSN); err != nil {
				l.broken = fmt.Errorf("persist: sync: %w", err)
				return 0, l.broken
			}
		}
		if err := l.f.Sync(); err != nil {
			l.broken = fmt.Errorf("persist: sync: %w", err)
			return 0, l.broken
		}
	}
	l.next++
	l.active().size += int64(len(buf))
	if l.flushHook != nil {
		l.flushHook(buf, rec.LSN, rec.LSN)
	}
	l.maybeRotate()
	return rec.LSN, nil
}

// AppendRaw appends already-framed WAL bytes verbatim and fsyncs them: a
// replication follower writes the primary's shipped frames with it, so
// the follower's log is byte-identical to the primary's by construction
// (segment boundaries may differ — the concatenation is what matches).
// first/last declare the contiguous LSN range the frames cover; first
// must be the next LSN this log expects. AppendRaw is incompatible with
// an active group-commit buffer (followers append what was already
// batched upstream).
func (l *Log) AppendRaw(data []byte, first, last int64) error {
	if l.broken != nil {
		return l.broken
	}
	if len(l.bufLSNs) > 0 {
		return fmt.Errorf("persist: AppendRaw with %d buffered records", len(l.bufLSNs))
	}
	if first != l.next {
		return fmt.Errorf("persist: AppendRaw at LSN %d, expected %d", first, l.next)
	}
	if last < first {
		return fmt.Errorf("persist: AppendRaw range [%d, %d] inverted", first, last)
	}
	if _, err := l.f.Write(data); err != nil {
		l.broken = fmt.Errorf("persist: append: %w", err)
		return l.broken
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			l.broken = fmt.Errorf("persist: sync: %w", err)
			return l.broken
		}
	}
	l.next = last + 1
	l.active().size += int64(len(data))
	if l.flushHook != nil {
		l.flushHook(data, first, last)
	}
	l.maybeRotate()
	return nil
}

// Flush writes and (unless disabled) fsyncs all buffered group-commit
// records as one batch. The failpoints are consulted per buffered LSN, in
// order, so fault tests written against per-record appends inject at the
// same LSN under group commit; an injected append fault leaves the batch
// prefix before the failing record plus half of its frame — exactly the
// torn image a crash mid-batch-write produces.
func (l *Log) Flush() error {
	if l.broken != nil {
		return l.broken
	}
	if len(l.bufLSNs) == 0 {
		return nil
	}
	if l.fail != nil {
		for i, lsn := range l.bufLSNs {
			if err := l.fail("append", lsn); err != nil {
				frameEnd := len(l.buf)
				if i+1 < len(l.bufOffs) {
					frameEnd = l.bufOffs[i+1]
				}
				if torn := l.bufOffs[i] + (frameEnd-l.bufOffs[i])/2; torn > 0 {
					_, _ = l.f.Write(l.buf[:torn])
				}
				l.broken = fmt.Errorf("persist: append: %w", err)
				return l.broken
			}
		}
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.broken = fmt.Errorf("persist: append: %w", err)
		return l.broken
	}
	if l.sync {
		if l.fail != nil {
			for _, lsn := range l.bufLSNs {
				if err := l.fail("sync", lsn); err != nil {
					l.broken = fmt.Errorf("persist: sync: %w", err)
					return l.broken
				}
			}
		}
		if err := l.f.Sync(); err != nil {
			l.broken = fmt.Errorf("persist: sync: %w", err)
			return l.broken
		}
	}
	l.active().size += int64(len(l.buf))
	first, last := l.bufLSNs[0], l.bufLSNs[len(l.bufLSNs)-1]
	if l.flushHook != nil {
		l.flushHook(l.buf, first, last)
	}
	l.buf = l.buf[:0]
	l.bufLSNs = l.bufLSNs[:0]
	l.bufOffs = l.bufOffs[:0]
	l.maybeRotate()
	return nil
}

// maybeRotate seals the active segment once it reaches the rotation
// threshold. Called only with an empty group-commit buffer (after the
// durable write that grew the segment).
func (l *Log) maybeRotate() {
	if l.broken != nil || l.segBytes <= 0 || l.active().size < l.segBytes {
		return
	}
	l.rotate()
}

// Rotate flushes any buffered records and seals the active segment,
// starting a new empty one. A snapshot save calls it so the covered
// segments become eligible for GC. Rotating an empty segment is a no-op.
func (l *Log) Rotate() error {
	if err := l.Flush(); err != nil {
		return err
	}
	if l.active().size == 0 {
		return nil
	}
	l.rotate()
	return l.broken
}

// rotate seals the active segment (fsync + close) and opens the next
// ordinal with O_EXCL, fsyncing the directory so the new name is durable.
// Any failure poisons the log: a half-rotated state must not take further
// appends. Requires an empty group-commit buffer.
func (l *Log) rotate() {
	if l.sync {
		if err := l.f.Sync(); err != nil {
			l.broken = fmt.Errorf("persist: rotate sync: %w", err)
			return
		}
	}
	if err := l.f.Close(); err != nil {
		l.broken = fmt.Errorf("persist: rotate close: %w", err)
		return
	}
	ord := l.active().ord + 1
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(ord)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		l.broken = fmt.Errorf("persist: rotate create: %w", err)
		return
	}
	if l.sync {
		if err := syncDir(l.dir); err != nil {
			f.Close()
			l.broken = fmt.Errorf("persist: rotate dir sync: %w", err)
			return
		}
	}
	l.f = f
	l.segs = append(l.segs, segment{ord: ord, first: l.next, size: 0})
}

// removeCoveredThrough deletes sealed segments whose every record has
// LSN <= floor, oldest first, so a crash mid-GC always leaves a
// contiguous ordinal range. The active segment is never removed. Removal
// failures are harmless: the next open (or next GC pass) retries.
func (l *Log) removeCoveredThrough(floor int64) {
	for len(l.segs) >= 2 && l.segs[1].first-1 <= floor {
		_ = os.Remove(filepath.Join(l.dir, segmentName(l.segs[0].ord)))
		l.segs = l.segs[1:]
	}
}

// Close flushes any buffered group-commit records and closes the
// underlying file. A poisoned log closes without flushing — the tail
// state is unknown, and the poisoning error already surfaced at the
// append that caused it.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var ferr error
	if l.broken == nil {
		ferr = l.Flush()
	}
	err := l.f.Close()
	l.f = nil
	if ferr != nil {
		return ferr
	}
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// scanResult is what reading a WAL segment yields.
type scanResult struct {
	records []*Record
	// size is the number of valid bytes; less than the file size when a
	// torn tail was truncated.
	size int64
	// truncatedAt is the offset of the torn final record, -1 when intact.
	truncatedAt int64
}

// scanRecords parses a WAL segment image. A malformed suffix is accepted
// as a torn tail only when no complete valid record follows it — otherwise
// the damage is mid-log and scanning fails: skipping a whole committed
// record would silently diverge the recovered engine. (The disambiguation
// scan is conservative: a payload byte sequence that happens to look like
// a later intact frame turns a genuinely torn tail into a reported
// corruption error, which is safe — recovery refuses rather than guesses.)
func scanRecords(data []byte) (*scanResult, error) {
	res := &scanResult{truncatedAt: -1}
	off := int64(0)
	for int64(len(data))-off > 0 {
		rec, recLen, err := parseFrame(data[off:])
		if err != nil {
			if next := findValidFrame(data, off+1); next >= 0 {
				return nil, fmt.Errorf("persist: wal corrupt at offset %d (%v) but intact record found at offset %d; refusing to skip a committed record", off, err, next)
			}
			res.truncatedAt = off
			break
		}
		res.records = append(res.records, rec)
		off += recLen
	}
	res.size = off
	return res, nil
}

// parseFrame parses one record at the head of data, returning it and its
// framed length.
func parseFrame(data []byte) (*Record, int64, error) {
	if len(data) < headerLen {
		return nil, 0, fmt.Errorf("short header (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], walMagic) {
		return nil, 0, fmt.Errorf("bad magic %q", data[:4])
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if n > maxRecordLen {
		return nil, 0, fmt.Errorf("length %d exceeds limit", n)
	}
	if int64(len(data)) < headerLen+int64(n) {
		return nil, 0, fmt.Errorf("short payload (%d of %d bytes)", len(data)-headerLen, n)
	}
	payload := data[headerLen : headerLen+int64(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[8:12]); got != want {
		return nil, 0, fmt.Errorf("checksum mismatch (%08x != %08x)", got, want)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, 0, fmt.Errorf("payload: %w", err)
	}
	return &rec, headerLen + int64(n), nil
}

// ParseFrames strictly decodes a run of complete WAL frames: every byte
// must belong to a valid frame (no torn-tail tolerance — a replication
// batch is delivered whole or not at all) and the records' LSNs must be
// contiguous. offs[i] is the byte offset of record i within data, so a
// consumer can slice the verbatim bytes of any record suffix.
func ParseFrames(data []byte) (recs []*Record, offs []int, err error) {
	off := int64(0)
	for off < int64(len(data)) {
		rec, recLen, err := parseFrame(data[off:])
		if err != nil {
			return nil, nil, fmt.Errorf("persist: frame at offset %d: %w", off, err)
		}
		if n := len(recs); n > 0 && rec.LSN != recs[n-1].LSN+1 {
			return nil, nil, fmt.Errorf("persist: wal LSN gap in batch: %d follows %d", rec.LSN, recs[n-1].LSN)
		}
		recs = append(recs, rec)
		offs = append(offs, int(off))
		off += recLen
	}
	return recs, offs, nil
}

// WALChunk is a shippable run of contiguous WAL frames: the verbatim
// bytes plus the LSN range they cover.
type WALChunk struct {
	Data        []byte
	First, Last int64
}

// SplitFrames cuts a run of contiguous frames into chunks of at most max
// bytes, always at frame boundaries (one oversized frame is its own
// chunk). The chunks' bytes alias data.
func SplitFrames(data []byte, max int) ([]WALChunk, error) {
	recs, offs, err := ParseFrames(data)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	var out []WALChunk
	start := 0
	for i := range recs {
		end := len(data)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		if end-offs[start] > max && i > start {
			out = append(out, WALChunk{
				Data:  data[offs[start]:offs[i]],
				First: recs[start].LSN,
				Last:  recs[i-1].LSN,
			})
			start = i
		}
	}
	out = append(out, WALChunk{
		Data:  data[offs[start]:],
		First: recs[start].LSN,
		Last:  recs[len(recs)-1].LSN,
	})
	return out, nil
}

// findValidFrame scans forward from offset from for any complete, valid
// record; it returns the offset or -1.
func findValidFrame(data []byte, from int64) int64 {
	for off := from; off+headerLen <= int64(len(data)); off++ {
		if !bytes.Equal(data[off:off+4], walMagic) {
			continue
		}
		if _, _, err := parseFrame(data[off:]); err == nil {
			return off
		}
	}
	return -1
}
