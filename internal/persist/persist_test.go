package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptlactive/internal/histio"
)

// testSnapshot builds a minimal valid snapshot stamped at the given LSN.
func testSnapshot(lsn int64) *EngineSnapshot {
	return &EngineSnapshot{
		Init:    &InitRecord{Start: 0},
		LSN:     lsn,
		History: []histio.StateJSON{{Time: 0, DB: map[string]json.RawMessage{}}},
	}
}

// appendN opens dir and appends n emit records (LSNs continuing from
// whatever the store already holds), leaving the store closed.
func appendN(t *testing.T, dir string, n int) {
	t.Helper()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.DisableSync()
	if st.LastLSN() == 0 {
		if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{Start: 0}}); err != nil {
			t.Fatal(err)
		}
		n--
	}
	for i := 0; i < n; i++ {
		if _, err := st.Append(&Record{Kind: KindEmit, TS: int64(i + 1), Events: [][]json.RawMessage{{json.RawMessage(`"e"`)}}}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	snap := testSnapshot(7)
	snap.Rules = []RuleSnapshot{{Name: "r", Cond: json.RawMessage(`{"k":"bool","b":true}`), Cursor: 1, Eval: json.RawMessage(`{}`)}}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 7 || len(got.Rules) != 1 || got.Rules[0].Name != "r" {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestEnvelopeRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, testSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]string{
		"payload flip":  strings.Replace(good, `"start"`, `"START"`, 1),
		"version":       strings.Replace(good, `"version":1`, `"version":99`, 1),
		"kind":          strings.Replace(good, SnapshotKind, "other-thing", 1),
		"not json":      good[:len(good)/2],
		"empty":         "",
		"wrong payload": `{"version":1,"kind":"engine-snapshot","crc":0,"payload":null}`,
	}
	for name, blob := range cases {
		if _, err := DecodeSnapshot(strings.NewReader(blob)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestSnapshotValidate(t *testing.T) {
	cases := map[string]*EngineSnapshot{
		"no init":    {History: []histio.StateJSON{{}}},
		"no history": {Init: &InitRecord{}},
		"bad cursor": {
			Init:    &InitRecord{},
			History: []histio.StateJSON{{}},
			Rules:   []RuleSnapshot{{Name: "r", Cursor: 5}},
		},
		"empty rule name": {
			Init:    &InitRecord{},
			History: []histio.StateJSON{{}},
			Rules:   []RuleSnapshot{{Cursor: 0}},
		},
	}
	for name, snap := range cases {
		if err := snap.validate(); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestOpenFreshAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != nil || len(res.Tail) != 0 || res.TruncatedAt != -1 {
		t.Fatalf("fresh dir: %+v", res)
	}
	st.DisableSync()
	for i := 1; i <= 3; i++ {
		lsn, err := st.Append(&Record{Kind: KindEmit, TS: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != int64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if st.LastLSN() != 3 {
		t.Fatalf("LastLSN = %d", st.LastLSN())
	}
	st.Close()

	_, res, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tail) != 3 || res.Tail[0].LSN != 1 || res.Tail[2].TS != 3 {
		t.Fatalf("reopen tail: %+v", res.Tail)
	}
}

func TestSaveSnapshotResetsWALAndPrunes(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 5)
	st, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.DisableSync()
	if len(res.Tail) != 5 {
		t.Fatalf("tail = %d records", len(res.Tail))
	}
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	// First snapshot covers LSNs 1..5.
	if _, err := st.Append(&Record{Kind: KindEmit, TS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, res2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if res2.Snapshot == nil || res2.SnapshotLSN != 6 {
		t.Fatalf("snapshot LSN = %d, want 6", res2.SnapshotLSN)
	}
	if len(res2.Tail) != 0 {
		t.Fatalf("tail after snapshot = %d records", len(res2.Tail))
	}
	// The superseded snapshot file must be gone.
	entries, _ := os.ReadDir(dir)
	snaps := 0
	for _, ent := range entries {
		if _, ok := parseSnapshotName(ent.Name()); ok {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshot files retained, want 1", snaps)
	}
	// Appends continue past the snapshot LSN.
	if lsn, err := st2.Append(&Record{Kind: KindEmit, TS: 11}); err != nil || lsn != 7 {
		t.Fatalf("append after recover: lsn=%d err=%v", lsn, err)
	}
}

// TestCrashBetweenSnapshotAndReset simulates a crash after the snapshot
// file is installed but before the WAL reset: the covered records are
// still in the file and must be skipped, not replayed.
func TestCrashBetweenSnapshotAndReset(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 4)
	// Install a snapshot covering LSNs 1..4 by hand, leaving the WAL alone.
	f, err := os.Create(filepath.Join(dir, snapshotName(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := EncodeSnapshot(f, testSnapshot(4)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if res.SnapshotLSN != 4 || len(res.Tail) != 0 {
		t.Fatalf("snapLSN=%d tail=%d, want 4/0", res.SnapshotLSN, len(res.Tail))
	}
	if lsn, err := st.Append(&Record{Kind: KindEmit, TS: 9}); err != nil || lsn != 5 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
}

func TestOpenRejectsLSNGap(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.DisableSync()
	if _, err := st.Append(&Record{Kind: KindEmit, TS: 1}); err != nil {
		t.Fatal(err)
	}
	// Force a gap.
	st.log.next = 5
	if _, err := st.Append(&Record{Kind: KindEmit, TS: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("want LSN gap error, got %v", err)
	}
}

func TestOpenRejectsDamagedNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 2)
	if err := os.WriteFile(filepath.Join(dir, snapshotName(2)), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("damaged newest snapshot: want error, got nil")
	}
}

func TestOpenRejectsTailAfterGapFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 3)
	// Snapshot claims to cover through LSN 1 only; WAL holds 1..3, so tail
	// 2..3 is continuous. Now install one claiming LSN 0 with a WAL
	// starting at 2: records 2..3 follow a hole.
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.DisableSync()
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(&Record{Kind: KindEmit, TS: 7}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Remove the snapshot: the WAL now starts at LSN 4 with nothing before.
	if err := os.Remove(filepath.Join(dir, snapshotName(3))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("wal starting past a missing snapshot: want error, got nil")
	}
}

// buildWAL writes n records to a fresh dir and returns the raw WAL image
// plus each record's starting offset.
func buildWAL(t *testing.T, n int) (string, []byte, []int64) {
	t.Helper()
	dir := t.TempDir()
	appendN(t, dir, n)
	data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(0)
	for off < int64(len(data)) {
		offs = append(offs, off)
		_, n, err := parseFrame(data[off:])
		if err != nil {
			t.Fatalf("frame at %d: %v", off, err)
		}
		off += n
	}
	return dir, data, offs
}

// TestTornFinalRecordEveryTruncation is the fault-injection satellite:
// truncating the WAL at every byte offset inside the final record must
// recover the prefix and report the replay point — never panic, never
// fail, never skip a full record.
func TestTornFinalRecordEveryTruncation(t *testing.T) {
	const n = 5
	dir, data, offs := buildWAL(t, n)
	finalStart := offs[n-1]
	walPath := filepath.Join(dir, segmentName(1))
	for cut := finalStart; cut <= int64(len(data)); cut++ {
		if err := os.WriteFile(walPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, res, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		complete := cut == int64(len(data))
		wantRecords := n - 1
		if complete {
			wantRecords = n
		}
		if len(res.Tail) != wantRecords {
			t.Fatalf("cut %d: %d records, want %d", cut, len(res.Tail), wantRecords)
		}
		switch {
		case complete && res.TruncatedAt != -1:
			t.Fatalf("cut %d: spurious truncation at %d", cut, res.TruncatedAt)
		case !complete && cut == finalStart && res.TruncatedAt != -1:
			// A cut exactly at the record boundary is a clean shorter log.
			t.Fatalf("cut %d: boundary cut reported truncation at %d", cut, res.TruncatedAt)
		case !complete && cut > finalStart && res.TruncatedAt != finalStart:
			t.Fatalf("cut %d: truncation reported at %d, want %d", cut, res.TruncatedAt, finalStart)
		}
		// The torn bytes must be gone from disk: appending must produce a
		// log whose next open sees wantRecords+1 records.
		st.DisableSync()
		if _, err := st.Append(&Record{Kind: KindEmit, TS: 99}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		st.Close()
		st2, res2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(res2.Tail) != wantRecords+1 {
			t.Fatalf("cut %d: after append %d records, want %d", cut, len(res2.Tail), wantRecords+1)
		}
		st2.Close()
	}
}

// TestCorruptFinalRecordEveryByte flips every byte of the final record in
// turn; recovery must truncate the torn tail and keep the intact prefix.
func TestCorruptFinalRecordEveryByte(t *testing.T) {
	const n = 5
	dir, data, offs := buildWAL(t, n)
	finalStart := offs[n-1]
	walPath := filepath.Join(dir, segmentName(1))
	for pos := finalStart; pos < int64(len(data)); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xff
		if err := os.WriteFile(walPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st, res, err := Open(dir)
		if err != nil {
			t.Fatalf("flip %d: %v", pos, err)
		}
		if len(res.Tail) != n-1 {
			t.Fatalf("flip %d: %d records, want %d", pos, len(res.Tail), n-1)
		}
		if res.TruncatedAt != finalStart {
			t.Fatalf("flip %d: truncation at %d, want %d", pos, res.TruncatedAt, finalStart)
		}
		st.Close()
	}
}

// TestCorruptMidLogIsHardError flips a byte in every non-final record in
// turn; intact records follow, so recovery must refuse rather than skip a
// committed record.
func TestCorruptMidLogIsHardError(t *testing.T) {
	const n = 5
	dir, data, offs := buildWAL(t, n)
	walPath := filepath.Join(dir, segmentName(1))
	for rec := 0; rec < n-1; rec++ {
		// One flip inside the payload and one in the header of each record.
		for _, pos := range []int64{offs[rec] + 5, offs[rec] + headerLen + 2} {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0xff
			if err := os.WriteFile(walPath, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := Open(dir)
			if err == nil {
				t.Fatalf("record %d flip at %d: want error, got nil", rec, pos)
			}
			if !strings.Contains(err.Error(), "refusing to skip") {
				t.Fatalf("record %d flip at %d: error %v does not refuse", rec, pos, err)
			}
		}
	}
}

func TestSnapshotNameRoundTrip(t *testing.T) {
	for _, lsn := range []int64{0, 1, 42, 1 << 40} {
		got, ok := parseSnapshotName(snapshotName(lsn))
		if !ok || got != lsn {
			t.Fatalf("parse(%s) = %d,%t", snapshotName(lsn), got, ok)
		}
	}
	for _, bad := range []string{"wal.log", "snap-.snap", "snap-x.snap", "snap-1.tmp", fmt.Sprintf("snap-%020d", 3)} {
		if _, ok := parseSnapshotName(bad); ok {
			t.Fatalf("parse(%s) accepted", bad)
		}
	}
}
