package persist

// Replication primitives: the flush hook that feeds WAL shipping, the
// raw-frame append on the follower side, and the backlog reader. The
// anchor property throughout: the bytes a hook or reader hands out are
// exactly the bytes in the wal file, so a follower that persists them
// verbatim owns a byte-identical log.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestFlushHookDeliversExactFileBytes appends under several batch sizes
// and checks the concatenated hook payloads equal the wal file, with
// contiguous LSN ranges.
func TestFlushHookDeliversExactFileBytes(t *testing.T) {
	for _, group := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("group%d", group), func(t *testing.T) {
			dir := t.TempDir()
			st := openGroupStore(t, dir, group)
			defer st.Close()

			var shipped []byte
			var next int64 = 1
			st.SetFlushHook(func(data []byte, first, last int64) {
				if first != next {
					t.Fatalf("batch starts at %d, want %d", first, next)
				}
				if last < first {
					t.Fatalf("batch range [%d,%d] inverted", first, last)
				}
				next = last + 1
				shipped = append(shipped, data...) // copy: buffer is reused
			})

			if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{Start: 0}}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := st.Append(emitRec(int64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}

			file, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(shipped, file) {
				t.Fatalf("hook shipped %d bytes != wal file %d bytes", len(shipped), len(file))
			}
			if next != 12 {
				t.Fatalf("hook covered through LSN %d, want 11", next-1)
			}
		})
	}
}

// TestAppendRawReplicatesByteIdentical ships a primary's wal to a fresh
// dir via hook batches and checks file bytes and replayable records agree.
func TestAppendRawReplicatesByteIdentical(t *testing.T) {
	primary := t.TempDir()
	follower := t.TempDir()

	pst := openGroupStore(t, primary, 4)
	defer pst.Close()
	fst := openGroupStore(t, follower, 1)
	defer fst.Close()

	pst.SetFlushHook(func(data []byte, first, last int64) {
		cp := make([]byte, len(data))
		copy(cp, data)
		if err := fst.AppendRaw(cp, first, last); err != nil {
			t.Fatalf("AppendRaw [%d,%d]: %v", first, last, err)
		}
	})

	if _, err := pst.Append(&Record{Kind: KindInit, Init: &InitRecord{Start: 0}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := pst.Append(emitRec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pst.Flush(); err != nil {
		t.Fatal(err)
	}

	pb, _ := os.ReadFile(filepath.Join(primary, segmentName(1)))
	fb, _ := os.ReadFile(filepath.Join(follower, segmentName(1)))
	if !bytes.Equal(pb, fb) {
		t.Fatalf("follower wal differs: %d vs %d bytes", len(fb), len(pb))
	}
	if got, want := len(reopenRecords(t, follower)), len(reopenRecords(t, primary)); got != want {
		t.Fatalf("follower replays %d records, primary %d", got, want)
	}
}

// TestAppendRawRejectsGapAndDuplicate pins the contiguity guard: frames
// must start exactly at the next LSN.
func TestAppendRawRejectsGapAndDuplicate(t *testing.T) {
	src := t.TempDir()
	appendN(t, src, 3)
	data, err := os.ReadFile(filepath.Join(src, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}

	dst := openGroupStore(t, t.TempDir(), 1)
	defer dst.Close()
	if err := dst.AppendRaw(data, 2, 3); err == nil {
		t.Fatal("gap (first=2 into empty log) accepted")
	}
	if err := dst.AppendRaw(data, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := dst.AppendRaw(data, 1, 3); err == nil {
		t.Fatal("duplicate frames accepted")
	}
	if dst.LastLSN() != 3 {
		t.Fatalf("LastLSN = %d, want 3", dst.LastLSN())
	}
}

// TestReadFramesFromChunks checks the backlog reader: contiguous
// coverage, bounded chunks, and the boundary conditions (current
// requester, unavailable past).
func TestReadFramesFromChunks(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 20)
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	chunks, err := st.ReadFramesFrom(1, 256)
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	next := int64(1)
	for _, c := range chunks {
		if c.First != next {
			t.Fatalf("chunk starts at %d, want %d", c.First, next)
		}
		if len(c.Data) > 256 && c.First != c.Last {
			t.Fatalf("multi-frame chunk of %d bytes exceeds max", len(c.Data))
		}
		next = c.Last + 1
		all = append(all, c.Data...)
	}
	if next != 21 {
		t.Fatalf("chunks cover through %d, want 20", next-1)
	}
	file, _ := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if !bytes.Equal(all, file) {
		t.Fatal("chunk bytes differ from wal file")
	}

	// Mid-log resume.
	chunks, err = st.ReadFramesFrom(11, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) == 0 || chunks[0].First != 11 || chunks[len(chunks)-1].Last != 20 {
		t.Fatalf("resume from 11 got %+v", chunks)
	}
	// A requester already at the durable tip gets nothing, no error.
	chunks, err = st.ReadFramesFrom(21, 1<<20)
	if err != nil || chunks != nil {
		t.Fatalf("tip requester: %v, %v", chunks, err)
	}
	// Beyond the tip is a protocol error.
	if _, err := st.ReadFramesFrom(23, 1<<20); err == nil {
		t.Fatal("future position accepted")
	}
}

// TestReadFramesFromSnapshotCovered: once a snapshot resets the wal, the
// pre-snapshot backlog is gone and the reader must say so rather than
// hand out a gapped stream.
func TestReadFramesFromSnapshotCovered(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 5)
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.DisableSync()
	if err := st.SaveSnapshot(testSnapshot(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadFramesFrom(3, 1<<20); err == nil {
		t.Fatal("snapshot-covered position accepted")
	}
	// The post-snapshot tip is still fine.
	if chunks, err := st.ReadFramesFrom(6, 1<<20); err != nil || chunks != nil {
		t.Fatalf("tip after snapshot: %v, %v", chunks, err)
	}
}

// TestEpochRecordRecovery: epoch records and the snapshot epoch field
// both surface through OpenResult.Epoch, taking the max.
func TestEpochRecordRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.DisableSync()
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{Start: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(&Record{Kind: KindEpoch, Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(emitRec(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(&Record{Kind: KindEpoch, Epoch: 7}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 7 {
		t.Fatalf("recovered epoch %d, want 7", res.Epoch)
	}
	st2.DisableSync()
	snap := testSnapshot(st2.LastLSN())
	snap.Epoch = 7
	if err := st2.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if res.Epoch != 7 {
		t.Fatalf("epoch after snapshot round-trip %d, want 7", res.Epoch)
	}
}
