package persist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// openRetain opens dir with a small rotation threshold and the given
// snapshot keep-count, sync disabled for speed.
func openRetain(t *testing.T, dir string, segBytes int64, keep int) (*Store, *OpenResult) {
	t.Helper()
	st, res, err := OpenOptions(dir, Options{SegmentBytes: segBytes, KeepSnapshots: keep})
	if err != nil {
		t.Fatal(err)
	}
	st.DisableSync()
	return st, res
}

func appendEmits(t *testing.T, st *Store, from, n int) int64 {
	t.Helper()
	var last int64
	for i := 0; i < n; i++ {
		lsn, err := st.Append(&Record{Kind: KindEmit, TS: int64(from + i), Events: [][]json.RawMessage{{json.RawMessage(`"e"`)}}})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	return last
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ent := range entries {
		if _, ok := parseSegmentName(ent.Name()); ok {
			out = append(out, ent.Name())
		}
	}
	return out
}

func snapshotFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ent := range entries {
		if _, ok := parseSnapshotName(ent.Name()); ok {
			out = append(out, ent.Name())
		}
	}
	return out
}

// TestSegmentRotationRoundTrip appends enough records to force several
// rotations, then reopens and checks every record replays in order across
// the segment boundaries.
func TestSegmentRotationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRetain(t, dir, 256, 1)
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	last := appendEmits(t, st, 1, 40)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(segmentFiles(t, dir)); n < 3 {
		t.Fatalf("40 records at a 256-byte threshold left %d segments, want several", n)
	}
	st2, res := openRetain(t, dir, 256, 1)
	defer st2.Close()
	if int64(len(res.Tail)) != last {
		t.Fatalf("recovered %d records, want %d", len(res.Tail), last)
	}
	for i, rec := range res.Tail {
		if rec.LSN != int64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
	if res.TruncatedAt != -1 {
		t.Fatalf("clean multi-segment log reported truncation at %d", res.TruncatedAt)
	}
}

// TestGroupCommitRotationFaultFree checks that rotation composes with
// group commit: batches land whole, rotation happens at flush boundaries,
// and reopening replays every flushed record across the segments.
func TestGroupCommitRotationFaultFree(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRetain(t, dir, 200, 1)
	if err := st.SetGroupCommit(4); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	last := appendEmits(t, st, 1, 30)
	if err := st.Close(); err != nil { // flushes the partial batch
		t.Fatal(err)
	}
	if n := len(segmentFiles(t, dir)); n < 2 {
		t.Fatalf("grouped appends never rotated (%d segments)", n)
	}
	st2, res := openRetain(t, dir, 200, 1)
	defer st2.Close()
	if int64(len(res.Tail)) != last {
		t.Fatalf("recovered %d records, want %d", len(res.Tail), last)
	}
}

// TestSegmentBoundaryTornFinalEveryByte extends the every-byte fault
// suite across a rotation boundary: the log spans several segments, and
// the final segment is truncated at every byte offset in turn. Recovery
// must keep every record of the sealed segments, keep the parseable
// prefix of the final one, and report the truncation — never skip, never
// fail.
func TestSegmentBoundaryTornFinalEveryByte(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRetain(t, dir, 128, 1)
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 1, 20)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	finalPath := filepath.Join(dir, segs[len(segs)-1])
	finalData, err := os.ReadFile(finalPath)
	if err != nil {
		t.Fatal(err)
	}
	var sealed int
	for _, name := range segs[:len(segs)-1] {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		scan, err := scanRecords(data)
		if err != nil {
			t.Fatal(err)
		}
		sealed += len(scan.records)
	}
	// Frame offsets within the final segment.
	var offs []int64
	off := int64(0)
	for off < int64(len(finalData)) {
		offs = append(offs, off)
		_, n, err := parseFrame(finalData[off:])
		if err != nil {
			t.Fatalf("frame at %d: %v", off, err)
		}
		off += n
	}
	for cut := int64(0); cut <= int64(len(finalData)); cut++ {
		if err := os.WriteFile(finalPath, finalData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, res, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Count frames wholly before the cut.
		complete := 0
		for i := range offs {
			end := int64(len(finalData))
			if i+1 < len(offs) {
				end = offs[i+1]
			}
			if end <= cut {
				complete++
			}
		}
		if want := sealed + complete; len(res.Tail) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(res.Tail), want)
		}
		st2.Close()
	}
}

// TestSnapshotGCKeepCount drives repeated append+snapshot cycles and
// checks the retention GC holds the line: at most keep snapshots, at most
// two live segments (the active one plus at most one not yet covered),
// and a monotonically advancing retained head.
func TestSnapshotGCKeepCount(t *testing.T) {
	const keep = 2
	dir := t.TempDir()
	st, _ := openRetain(t, dir, 256, keep)
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	var lastHead int64
	var segCounts []int
	next := 1
	for cycle := 0; cycle < 6; cycle++ {
		appendEmits(t, st, next, 10)
		next += 10
		if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
			t.Fatal(err)
		}
		if n := len(snapshotFiles(t, dir)); n > keep {
			t.Fatalf("cycle %d: %d snapshots on disk, keep-count is %d", cycle, n, keep)
		}
		head := st.HeadLSN()
		if head < lastHead {
			t.Fatalf("cycle %d: retained head moved backwards (%d -> %d)", cycle, lastHead, head)
		}
		lastHead = head
		segCounts = append(segCounts, len(segmentFiles(t, dir)))
	}
	// Constant per-cycle traffic must reach a steady-state segment count:
	// the chain reaches back exactly keep snapshot cycles, never further.
	n := len(segCounts)
	if segCounts[n-1] != segCounts[n-2] || segCounts[n-2] != segCounts[n-3] {
		t.Fatalf("segment count still growing after 6 cycles: %v", segCounts)
	}
	// The oldest retained snapshot still covers the head: reopening works
	// and replays only what the newest snapshot does not cover.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, res, err := OpenOptions(dir, Options{SegmentBytes: 256, KeepSnapshots: keep})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if res.Snapshot == nil {
		t.Fatal("no snapshot recovered")
	}
	if len(res.Tail) != 0 {
		t.Fatalf("tail of %d records after a final snapshot", len(res.Tail))
	}
	if res.HeadLSN <= 1 {
		t.Fatalf("retained head never advanced past %d", res.HeadLSN)
	}
	// Disk stays bounded: the segment chain only reaches back to the
	// oldest retained snapshot (two 10-record cycles at this threshold).
	if n := len(segmentFiles(t, dir)); n > segCounts[len(segCounts)-1] {
		t.Fatalf("%d segments on disk after reopen, steady state was %d", n, segCounts[len(segCounts)-1])
	}
}

// TestManifestClampNeverOverdeletes plants a manifest claiming a GC floor
// far past the newest snapshot; the open-time resume must clamp it to
// real snapshot coverage and keep every uncovered record.
func TestManifestClampNeverOverdeletes(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRetain(t, dir, 0, 1)
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 1, 5)
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 6, 5) // uncovered tail
	tail := st.LastLSN()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(dir, &Manifest{Version: 1, CoveredLSN: 1 << 40, Snapshots: []int64{1 << 40}}); err != nil {
		t.Fatal(err)
	}
	st2, res, err := Open(dir)
	if err != nil {
		t.Fatalf("lying manifest broke recovery: %v", err)
	}
	defer st2.Close()
	if res.Snapshot == nil || len(res.Tail) != int(tail-res.SnapshotLSN) {
		t.Fatalf("recovered %d tail records after snapshot %d, want %d", len(res.Tail), res.SnapshotLSN, tail-res.SnapshotLSN)
	}
}

// TestManifestTornEveryByte truncates the manifest at every byte (and
// replaces it with garbage): recovery must treat every damaged form as
// advisory-absent and recover the same state.
func TestManifestTornEveryByte(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRetain(t, dir, 256, 2)
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 1, 10)
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 11, 5)
	wantTail := st.LastLSN()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, manifestFile)
	manData, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	images := [][]byte{[]byte("garbage"), []byte(`{"version":99}`)}
	for cut := 0; cut < len(manData); cut++ {
		images = append(images, manData[:cut])
	}
	for i, img := range images {
		if err := os.WriteFile(manPath, img, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, res, err := Open(dir)
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		if got := res.SnapshotLSN + int64(len(res.Tail)); got != wantTail {
			t.Fatalf("image %d: recovered through LSN %d, want %d", i, got, wantTail)
		}
		st2.Close()
		// Restore the good manifest for the next iteration's baseline.
		if err := os.WriteFile(manPath, manData, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStaleManifestUnderDeletes restores an older GC's manifest after a
// newer GC pass ran; the open must only under-delete (resume less than it
// could) and recover the full state.
func TestStaleManifestUnderDeletes(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRetain(t, dir, 256, 1)
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 1, 10)
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 11, 10)
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 21, 3)
	wantTail := st.LastLSN()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, res, err := Open(dir)
	if err != nil {
		t.Fatalf("stale manifest broke recovery: %v", err)
	}
	defer st2.Close()
	if got := res.SnapshotLSN + int64(len(res.Tail)); got != wantTail {
		t.Fatalf("recovered through LSN %d, want %d", got, wantTail)
	}
}

// TestReadFramesTruncatedHead asks for a backlog position the GC already
// deleted; the typed error must surface so replication falls back to a
// snapshot bootstrap.
func TestReadFramesTruncatedHead(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRetain(t, dir, 0, 1)
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 1, 5)
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 6, 2)
	defer st.Close()
	_, err := st.ReadFramesFrom(1, 1<<20)
	if err == nil {
		t.Fatal("reading below the retained head succeeded")
	}
	var th *TruncatedHeadError
	if !errors.As(err, &th) {
		t.Fatalf("error %v is not a TruncatedHeadError", err)
	}
	if !errors.Is(err, ErrTruncatedHead) {
		t.Fatalf("error %v does not unwrap to ErrTruncatedHead", err)
	}
	if th.From != 1 || th.Head != 7 {
		t.Fatalf("TruncatedHeadError{From:%d, Head:%d}, want {1, 7}", th.From, th.Head)
	}
	// The retained portion still reads fine.
	chunks, err := st.ReadFramesFrom(7, 1<<20)
	if err != nil || len(chunks) == 0 {
		t.Fatalf("retained read failed: %v (%d chunks)", err, len(chunks))
	}
}

// TestInstallSnapshotBootstrap ships the newest snapshot from one store
// into a fresh one and checks the receiver continues from exactly
// lsn+1 — the follower-bootstrap contract.
func TestInstallSnapshotBootstrap(t *testing.T) {
	src := t.TempDir()
	st, _ := openRetain(t, src, 0, 1)
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{}}); err != nil {
		t.Fatal(err)
	}
	appendEmits(t, st, 1, 7)
	if err := st.SaveSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	data, lsn, ok, err := st.NewestSnapshot()
	if err != nil || !ok {
		t.Fatalf("NewestSnapshot: %v (ok=%t)", err, ok)
	}
	st.Close()

	dst := t.TempDir()
	st2, _ := openRetain(t, dst, 0, 1)
	snap, err := st2.InstallSnapshot(data, lsn)
	if err != nil {
		t.Fatal(err)
	}
	if snap.LSN != lsn {
		t.Fatalf("installed snapshot LSN %d, want %d", snap.LSN, lsn)
	}
	got, err := st2.Append(&Record{Kind: KindEmit, TS: 99, Events: [][]json.RawMessage{{json.RawMessage(`"e"`)}}})
	if err != nil {
		t.Fatal(err)
	}
	if got != lsn+1 {
		t.Fatalf("first append after install got LSN %d, want %d", got, lsn+1)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, res, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if res.SnapshotLSN != lsn || len(res.Tail) != 1 || res.Tail[0].LSN != lsn+1 {
		t.Fatalf("reopen after install: snapshot %d, tail %d", res.SnapshotLSN, len(res.Tail))
	}
	// A wrong-LSN install is refused before touching anything.
	if _, err := st3.InstallSnapshot(data, lsn+5); err == nil {
		t.Fatal("mismatched install LSN accepted")
	}
}

// TestLegacyWALMigration renames a single-file wal.log layout into the
// segment scheme on open, and refuses a directory holding both formats.
func TestLegacyWALMigration(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 5)
	if err := os.Rename(filepath.Join(dir, segmentName(1)), filepath.Join(dir, legacyWALFile)); err != nil {
		t.Fatal(err)
	}
	st, res, err := Open(dir)
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	if len(res.Tail) != 5 {
		t.Fatalf("migrated %d records, want 5", len(res.Tail))
	}
	st.Close()
	if _, err := os.Stat(filepath.Join(dir, legacyWALFile)); !os.IsNotExist(err) {
		t.Fatal("wal.log still present after migration")
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatalf("segment missing after migration: %v", err)
	}
	// Both formats at once is ambiguous.
	if err := os.WriteFile(filepath.Join(dir, legacyWALFile), []byte{}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("open with both wal.log and segments succeeded")
	}
}
