package persist

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// FormatVersion is the snapshot envelope version; readers reject anything
// newer than they understand.
const FormatVersion = 1

// SnapshotKind tags engine snapshots inside the envelope.
const SnapshotKind = "engine-snapshot"

// Envelope is the versioned, checksummed container every snapshot file
// uses: one JSON object whose payload is verified against an embedded
// CRC32 before being interpreted.
type Envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// WriteEnvelope marshals payload and writes it to w inside a checksummed
// versioned envelope.
func WriteEnvelope(w io.Writer, kind string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: encode %s payload: %w", kind, err)
	}
	env := Envelope{Version: FormatVersion, Kind: kind, CRC: crc32.ChecksumIEEE(raw), Payload: raw}
	blob, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("persist: encode %s envelope: %w", kind, err)
	}
	if _, err := w.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("persist: write %s: %w", kind, err)
	}
	return nil
}

// ReadEnvelope reads one envelope from r, verifies version, kind and
// checksum, and returns the raw payload.
func ReadEnvelope(r io.Reader, kind string) (json.RawMessage, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: read %s: %w", kind, err)
	}
	var env Envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("persist: parse %s envelope: %w", kind, err)
	}
	if env.Version < 1 || env.Version > FormatVersion {
		return nil, fmt.Errorf("persist: %s envelope version %d unsupported (have %d)", kind, env.Version, FormatVersion)
	}
	if env.Kind != kind {
		return nil, fmt.Errorf("persist: envelope kind %q, want %q", env.Kind, kind)
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC {
		return nil, fmt.Errorf("persist: %s payload checksum mismatch (%08x != %08x)", kind, got, env.CRC)
	}
	return env.Payload, nil
}

// EncodeSnapshot writes an engine snapshot to w after validating it.
func EncodeSnapshot(w io.Writer, snap *EngineSnapshot) error {
	if err := snap.validate(); err != nil {
		return err
	}
	return WriteEnvelope(w, SnapshotKind, snap)
}

// DecodeSnapshot reads and validates an engine snapshot from r.
func DecodeSnapshot(r io.Reader) (*EngineSnapshot, error) {
	payload, err := ReadEnvelope(r, SnapshotKind)
	if err != nil {
		return nil, err
	}
	var snap EngineSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("persist: parse snapshot: %w", err)
	}
	if err := snap.validate(); err != nil {
		return nil, err
	}
	return &snap, nil
}
