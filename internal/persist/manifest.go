package persist

import (
	"encoding/json"
	"os"
	"path/filepath"
)

const manifestFile = "wal.manifest"

// Manifest records the retention GC's intent durably before any file is
// deleted: which snapshot versions are retained and through which LSN the
// oldest of them covers the log. It is written (temp + fsync + rename +
// directory fsync) before snapshot or segment deletion begins, so a crash
// at any byte of a GC pass leaves either the old manifest (GC under-done,
// redone on the next pass) or the new one (the deletions it implies are
// resumed at the next open).
//
// The manifest is advisory, never authoritative: recovery clamps its
// floor to the newest snapshot that actually validates on disk, so a
// corrupt-but-parseable manifest can never talk GC into deleting records
// that no present snapshot covers.
type Manifest struct {
	Version int `json:"version"`
	// CoveredLSN is the GC floor: every WAL record with LSN <= CoveredLSN
	// is covered by the oldest retained snapshot.
	CoveredLSN int64 `json:"covered"`
	// Snapshots lists the retained snapshot versions (their covered LSNs),
	// oldest first.
	Snapshots []int64 `json:"snapshots"`
}

// writeManifest durably replaces the manifest.
func writeManifest(dir string, m *Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "manifest-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, manifestFile)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// readManifest loads the manifest; a missing, unreadable or malformed
// manifest returns nil (GC simply has no resumable intent — safe, since
// the manifest only ever authorizes deletion of snapshot-covered data and
// recovery re-derives coverage from the snapshots themselves).
func readManifest(dir string) *Manifest {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil || m.Version != 1 {
		return nil
	}
	return &m
}
