package persist

import (
	"encoding/json"
	"errors"
	"testing"
)

// emitRecord builds a minimal emit record for fault tests.
func emitRecord(ts int64) *Record {
	return &Record{Kind: KindEmit, TS: ts, Events: [][]json.RawMessage{{json.RawMessage(`"e"`)}}}
}

// TestFailpointAppendFault injects a write fault: the append fails, the
// log is poisoned, and reopening recovers exactly the records before the
// fault — the injected half-frame is truncated as a torn tail.
func TestFailpointAppendFault(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.DisableSync()
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{Start: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(emitRecord(1)); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	st.SetFailpoint(func(op string, lsn int64) error {
		if op == "append" && lsn == 3 {
			return boom
		}
		return nil
	})
	if _, err := st.Append(emitRecord(2)); !errors.Is(err, boom) {
		t.Fatalf("faulted append: got %v, want %v", err, boom)
	}
	// The log is poisoned: even with the failpoint cleared, appends refuse.
	st.SetFailpoint(nil)
	if _, err := st.Append(emitRecord(3)); !errors.Is(err, boom) {
		t.Fatalf("append after fault: got %v, want poisoned %v", err, boom)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if res.TruncatedAt < 0 {
		t.Fatalf("expected a torn tail from the half-written frame, TruncatedAt=%d", res.TruncatedAt)
	}
	if got := len(res.Tail); got != 2 {
		t.Fatalf("recovered %d records, want the 2 before the fault", got)
	}
	if res.Tail[1].LSN != 2 {
		t.Fatalf("last recovered LSN = %d, want 2", res.Tail[1].LSN)
	}
	// The store stays usable: the truncated log accepts the next LSN.
	st2.DisableSync()
	if lsn, err := st2.Append(emitRecord(2)); err != nil || lsn != 3 {
		t.Fatalf("append after recovery: lsn=%d err=%v, want 3, nil", lsn, err)
	}
}

// TestFailpointSyncFault injects an fsync fault: the append fails and
// poisons the log, but the frame itself was fully written, so reopening
// legitimately recovers it — the record may have reached disk, and replay
// of a possibly-durable record is the safe direction.
func TestFailpointSyncFault(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sync stays enabled: the "sync" failpoint only fires on the fsync path.
	if _, err := st.Append(&Record{Kind: KindInit, Init: &InitRecord{Start: 0}}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("fsync: I/O error")
	st.SetFailpoint(func(op string, lsn int64) error {
		if op == "sync" && lsn == 2 {
			return boom
		}
		return nil
	})
	if _, err := st.Append(emitRecord(1)); !errors.Is(err, boom) {
		t.Fatalf("faulted append: got %v, want %v", err, boom)
	}
	if _, err := st.Append(emitRecord(2)); !errors.Is(err, boom) {
		t.Fatalf("append after fault: got %v, want poisoned %v", err, boom)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if res.TruncatedAt >= 0 {
		t.Fatalf("sync fault left a torn tail at %d, want a clean log", res.TruncatedAt)
	}
	if got := len(res.Tail); got != 2 {
		t.Fatalf("recovered %d records, want 2 (the un-fsynced frame was fully written)", got)
	}
}
