package query

import (
	"strings"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/relation"
	"ptlactive/internal/value"
)

func state(items map[string]value.Value, ts int64) history.SystemState {
	return history.SystemState{DB: history.NewDB(items), Events: event.NewSet(), TS: ts}
}

func TestBuiltins(t *testing.T) {
	r := NewRegistry()
	st := state(map[string]value.Value{"dj": value.NewInt(3900)}, 42)

	v, err := r.Eval("item", st, []value.Value{value.NewString("dj")})
	if err != nil || v.AsInt() != 3900 {
		t.Fatalf("item(dj) = %v, %v", v, err)
	}
	v, err = r.Eval("time", st, nil)
	if err != nil || v.AsInt() != 42 {
		t.Fatalf("time() = %v, %v", v, err)
	}
	// item resolves the reserved "time" data item too.
	v, err = r.Eval("item", st, []value.Value{value.NewString("time")})
	if err != nil || v.AsInt() != 42 {
		t.Fatalf("item(time) = %v, %v", v, err)
	}
	if _, err := r.Eval("item", st, []value.Value{value.NewString("missing")}); err == nil {
		t.Error("missing item should error")
	}
	if _, err := r.Eval("item", st, []value.Value{value.NewInt(1)}); err == nil {
		t.Error("non-string item name should error")
	}
	if _, err := r.Eval("item", st, nil); err == nil {
		t.Error("wrong arity should error")
	}
	if _, err := r.Eval("nope", st, nil); err == nil {
		t.Error("unknown function should error")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", 0, nil); err == nil {
		t.Error("empty name should error")
	}
	if err := r.Register("f", 0, nil); err == nil {
		t.Error("nil function should error")
	}
	ok := func(st history.SystemState, args []value.Value) (value.Value, error) {
		return value.True, nil
	}
	if err := r.Register("f", 0, ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("f", 0, ok); err == nil {
		t.Error("duplicate registration should error")
	}
	if err := r.Register("item", 1, ok); err == nil {
		t.Error("built-in must not be replaceable")
	}
	if !r.Has("f") || r.Has("zzz") {
		t.Error("Has wrong")
	}
	if a, ok := r.Arity("item"); !ok || a != 1 {
		t.Error("Arity(item) wrong")
	}
	if _, ok := r.Arity("zzz"); ok {
		t.Error("Arity of unknown should miss")
	}
	names := r.Names()
	if len(names) < 3 || names[0] > names[len(names)-1] {
		t.Errorf("Names = %v", names)
	}
}

func TestVariadic(t *testing.T) {
	r := NewRegistry()
	_ = r.Register("count", -1, func(st history.SystemState, args []value.Value) (value.Value, error) {
		return value.NewInt(int64(len(args))), nil
	})
	st := state(nil, 0)
	for n := 0; n < 4; n++ {
		args := make([]value.Value, n)
		for i := range args {
			args[i] = value.NewInt(int64(i))
		}
		v, err := r.Eval("count", st, args)
		if err != nil || v.AsInt() != int64(n) {
			t.Fatalf("count with %d args = %v, %v", n, v, err)
		}
	}
}

func stocksSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Kind: value.String},
		relation.Column{Name: "price", Kind: value.Float},
		relation.Column{Name: "company", Kind: value.String},
		relation.Column{Name: "category", Kind: value.String},
	)
}

func stocksItem() value.Value {
	return value.NewRelation([][]value.Value{
		{value.NewString("IBM"), value.NewFloat(72), value.NewString("IBM Corp"), value.NewString("tech")},
		{value.NewString("XYZ"), value.NewFloat(310), value.NewString("XYZ Inc"), value.NewString("tech")},
		{value.NewString("OIL"), value.NewFloat(305), value.NewString("Oil Co"), value.NewString("energy")},
	})
}

func TestRegisterItemField(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterItemField("price", "stock_for_sale", stocksSchema(), "name", "price"); err != nil {
		t.Fatal(err)
	}
	st := state(map[string]value.Value{"stock_for_sale": stocksItem()}, 1)
	v, err := r.Eval("price", st, []value.Value{value.NewString("IBM")})
	if err != nil || v.AsFloat() != 72 {
		t.Fatalf("price(IBM) = %v, %v", v, err)
	}
	if _, err := r.Eval("price", st, []value.Value{value.NewString("NONE")}); err == nil {
		t.Error("missing key should error")
	}
	// Missing item and non-relation item.
	if _, err := r.Eval("price", state(nil, 1), []value.Value{value.NewString("IBM")}); err == nil {
		t.Error("missing item should error")
	}
	bad := state(map[string]value.Value{"stock_for_sale": value.NewInt(1)}, 1)
	if _, err := r.Eval("price", bad, []value.Value{value.NewString("IBM")}); err == nil {
		t.Error("scalar item should error")
	}
	// Column validation at registration time.
	if err := r.RegisterItemField("bad", "stock_for_sale", stocksSchema(), "nope", "price"); err == nil {
		t.Error("unknown key column should error")
	}
}

// TestRegisterSelect reproduces the paper's OVERPRICED query:
// RETRIEVE (STOCK-FOR-SALE.name) WHERE STOCK-FOR-SALE.price >= 300.
func TestRegisterSelect(t *testing.T) {
	r := NewRegistry()
	err := r.RegisterSelect("overpriced", "stock_for_sale", stocksSchema(),
		func(row []value.Value) bool { return row[1].AsFloat() >= 300 }, "name")
	if err != nil {
		t.Fatal(err)
	}
	st := state(map[string]value.Value{"stock_for_sale": stocksItem()}, 1)
	v, err := r.Eval("overpriced", st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != value.Relation || v.NumRows() != 2 {
		t.Fatalf("overpriced = %v", v)
	}
	names := map[string]bool{}
	for _, row := range v.Rows() {
		names[row[0].AsString()] = true
	}
	if !names["XYZ"] || !names["OIL"] || names["IBM"] {
		t.Errorf("overpriced names = %v", names)
	}
	// Projection column validation.
	if err := r.RegisterSelect("bad", "x", stocksSchema(), nil, "nope"); err == nil ||
		!strings.Contains(err.Error(), "projection") {
		t.Error("unknown projection column should error")
	}
	// Missing item errors at eval.
	if _, err := r.Eval("overpriced", state(nil, 1), nil); err == nil {
		t.Error("missing item should error at eval")
	}
}

// Registry registration may race with evaluation: the engine's worker pool
// evaluates rule conditions (which call Eval) while an application
// goroutine can still be registering queries. Run under -race this guards
// the registry's internal locking.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	st := state(map[string]value.Value{"a": value.NewInt(7)}, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			name := "q" + strings.Repeat("x", i%5) + string(rune('a'+i%26))
			_ = r.Register(name, 0, func(history.SystemState, []value.Value) (value.Value, error) {
				return value.NewInt(1), nil
			})
		}
	}()
	for i := 0; i < 200; i++ {
		if v, err := r.Eval("item", st, []value.Value{value.NewString("a")}); err != nil || v.AsInt() != 7 {
			t.Fatalf("item(a) = %v, %v", v, err)
		}
		_ = r.Has("item")
		_, _ = r.Arity("time")
		_ = r.Names()
	}
	<-done
}
