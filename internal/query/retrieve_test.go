package query

import (
	"strings"
	"testing"

	"ptlactive/internal/value"
)

// TestRetrieveOverpriced is the paper's Section-4.1 query verbatim (modulo
// identifier punctuation): retrieve the names of stocks priced >= 300.
func TestRetrieveOverpriced(t *testing.T) {
	reg := NewRegistry()
	err := reg.RegisterRetrieve("overpriced",
		`RETRIEVE (stock_for_sale.name) WHERE stock_for_sale.price >= 300`,
		stocksSchema())
	if err != nil {
		t.Fatal(err)
	}
	st := state(map[string]value.Value{"stock_for_sale": stocksItem()}, 1)
	v, err := reg.Eval("overpriced", st, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, row := range v.Rows() {
		names[row[0].AsString()] = true
	}
	if !names["XYZ"] || !names["OIL"] || names["IBM"] || len(names) != 2 {
		t.Fatalf("overpriced = %v", names)
	}
}

func TestRetrieveWhereForms(t *testing.T) {
	reg := NewRegistry()
	st := state(map[string]value.Value{"s": stocksItem()}, 1)
	cases := map[string]int{
		`RETRIEVE (s.name)`:                                                3,
		`RETRIEVE (s.name) WHERE s.category = "tech"`:                      2,
		`RETRIEVE (s.name) WHERE s.category = "tech" AND s.price < 100`:    1,
		`RETRIEVE (s.name) WHERE s.category = "energy" OR s.price < 100`:   2,
		`RETRIEVE (s.name) WHERE NOT s.category = "tech"`:                  1,
		`RETRIEVE (s.name) WHERE (s.price >= 300 AND s.category = "tech")`: 1,
		`RETRIEVE (s.name, s.price) WHERE s.name != "IBM"`:                 2,
		`RETRIEVE (s.name) WHERE s.company = s.company`:                    3,
		`RETRIEVE (s.name) WHERE s.price > 304.5 AND s.price <= 310`:       2,
		`retrieve (s.name) where s.price = 72`:                             1,
	}
	for src, want := range cases {
		name := "q" + strings.ReplaceAll(strings.ReplaceAll(src, " ", ""), "\"", "")
		if err := reg.RegisterRetrieve(name, src, stocksSchema()); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		v, err := reg.Eval(name, st, nil)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if v.NumRows() != want {
			t.Errorf("%q = %d rows, want %d\n%v", src, v.NumRows(), want, v)
		}
	}
}

func TestRetrieveErrors(t *testing.T) {
	reg := NewRegistry()
	bad := []string{
		``,
		`SELECT (s.name)`,
		`RETRIEVE s.name`,
		`RETRIEVE (s.nope)`,
		`RETRIEVE (s.name) WHERE s.price`,
		`RETRIEVE (s.name) WHERE s.price >= `,
		`RETRIEVE (s.name) WHERE t.price >= 300`,
		`RETRIEVE (s.name, t.price)`,
		`RETRIEVE (s.name) WHERE s.price >= 300 trailing`,
		`RETRIEVE (s.name) WHERE (s.price >= 300`,
		`RETRIEVE (s.name) WHERE s.price >= 30.0.0`,
		`RETRIEVE (s.`,
		`RETRIEVE (`,
	}
	for i, src := range bad {
		if err := reg.RegisterRetrieve("bad"+strings.Repeat("x", i), src, stocksSchema()); err == nil {
			t.Errorf("RegisterRetrieve(%q) should fail", src)
		}
	}
}

func TestRetrieveRuntimeErrors(t *testing.T) {
	reg := NewRegistry()
	err := reg.RegisterRetrieve("q", `RETRIEVE (s.name) WHERE s.price >= 300`, stocksSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Missing item.
	if _, err := reg.Eval("q", state(nil, 1), nil); err == nil {
		t.Error("missing item should error")
	}
	// Item with wrong shape.
	badState := state(map[string]value.Value{"s": value.NewInt(3)}, 1)
	if _, err := reg.Eval("q", badState, nil); err == nil {
		t.Error("scalar item should error")
	}
	// Cross-kind ordering inside WHERE surfaces as an error.
	err = reg.RegisterRetrieve("q2", `RETRIEVE (s.name) WHERE s.name > 3`, stocksSchema())
	if err != nil {
		t.Fatal(err)
	}
	okState := state(map[string]value.Value{"s": stocksItem()}, 1)
	if _, err := reg.Eval("q2", okState, nil); err == nil {
		t.Error("string > int should error at evaluation")
	}
}

// TestRetrieveInsideCondition wires a RETRIEVE query into a PTL-style use:
// the engine-level usage goes through membership, exercised in core and
// adb; here we check relation output composes with FromValue consumers.
func TestRetrieveBoolLiterals(t *testing.T) {
	reg := NewRegistry()
	schema := stocksSchema()
	err := reg.RegisterRetrieve("q", `RETRIEVE (s.name) WHERE true AND NOT false`, schema)
	if err != nil {
		t.Fatal(err)
	}
	st := state(map[string]value.Value{"s": stocksItem()}, 1)
	v, err := reg.Eval("q", st, nil)
	if err != nil || v.NumRows() != 3 {
		t.Fatalf("rows=%d err=%v", v.NumRows(), err)
	}
}
