// Package query is the query layer between the logic and the database: PTL
// function symbols that denote database queries (Section 4.1, e.g.
// OVERPRICED or price(IBM)) resolve against a Registry of named Go
// functions evaluated on a system state. The logic stays independent of the
// data model, exactly as the paper requires: any query language can be
// plugged in by registering functions.
package query

import (
	"fmt"
	"sort"
	"sync"

	"ptlactive/internal/history"
	"ptlactive/internal/relation"
	"ptlactive/internal/value"
)

// Func is a registered query: given the current system state and actual
// parameters, it returns a scalar or relation value.
type Func func(st history.SystemState, args []value.Value) (value.Value, error)

// Registry maps function symbols to query implementations. The reserved
// symbol "item" (arity 1) reads a database item by name and is always
// present; "time" (arity 0) reads the state timestamp.
//
// A Registry is safe for concurrent use: lookups (Has, Arity, Names,
// Eval) may run from any number of goroutines — the engine's parallel
// temporal component evaluates many rules against one registry at once —
// while Register may run concurrently with them. The registered functions
// themselves must be safe for concurrent calls; pure functions over the
// passed-in state (the normal shape) are.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]entry
}

type entry struct {
	fn    Func
	arity int // -1 means variadic
	// pure marks a function whose result depends only on database items
	// (never on the timestamp, events, or external state). The evaluator
	// may cache pure calls across states while the database is unchanged.
	// readsKnown additionally certifies that reads lists every item the
	// function can touch, letting the engine's read-set scheduler skip
	// rules whose declared footprint an update leaves alone.
	pure       bool
	readsKnown bool
	reads      []string
}

// NewRegistry returns a registry with the built-in symbols installed.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]entry)}
	// "item" is pure but its read set depends on its argument; callers
	// with a constant argument can resolve the item name themselves.
	r.mustRegisterPure("item", 1, nil, func(st history.SystemState, args []value.Value) (value.Value, error) {
		if args[0].Kind() != value.String {
			return value.Value{}, fmt.Errorf("query: item() wants a string name, got %s", args[0].Kind())
		}
		name := args[0].AsString()
		v, ok := st.GetItem(name)
		if !ok {
			return value.Value{}, fmt.Errorf("query: unknown database item %q", name)
		}
		return v, nil
	})
	r.mustRegister("time", 0, func(st history.SystemState, args []value.Value) (value.Value, error) {
		return st.Time(), nil
	})
	return r
}

// RegisterPure installs a query function that is pure over the named
// database items: its result depends only on the current values of reads
// (which must list every item the function can touch). Purity enables the
// evaluator's per-DB-state query cache and the engine's read-set
// scheduling.
func (r *Registry) RegisterPure(name string, arity int, reads []string, fn Func) error {
	if err := r.Register(name, arity, fn); err != nil {
		return err
	}
	r.mu.Lock()
	e := r.funcs[name]
	e.pure = true
	e.readsKnown = true
	e.reads = append([]string(nil), reads...)
	sort.Strings(e.reads)
	r.funcs[name] = e
	r.mu.Unlock()
	return nil
}

// Pure reports whether the named function's result depends only on
// database items (so its value is stable while the database is
// unchanged). The built-in "item" is pure; "time" is not.
func (r *Registry) Pure(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.funcs[name].pure
}

// ReadSet returns the declared database-item footprint of a pure
// function. ok is false when the footprint is unknown — either the
// function was registered without one, or (like the built-in "item") the
// items it touches depend on its arguments.
func (r *Registry) ReadSet(name string) (reads []string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e := r.funcs[name]
	if !e.readsKnown {
		return nil, false
	}
	return e.reads, true
}

// Register installs a query function with a fixed arity (use -1 for
// variadic). Re-registering a name is an error; the built-ins cannot be
// replaced.
func (r *Registry) Register(name string, arity int, fn Func) error {
	if name == "" {
		return fmt.Errorf("query: empty function name")
	}
	if fn == nil {
		return fmt.Errorf("query: nil function for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.funcs[name]; dup {
		return fmt.Errorf("query: function %q already registered", name)
	}
	r.funcs[name] = entry{fn: fn, arity: arity}
	return nil
}

func (r *Registry) mustRegister(name string, arity int, fn Func) {
	if err := r.Register(name, arity, fn); err != nil {
		panic(err)
	}
}

// mustRegisterPure installs a built-in that is pure but has an
// argument-dependent footprint (readsKnown stays false).
func (r *Registry) mustRegisterPure(name string, arity int, reads []string, fn Func) {
	r.mustRegister(name, arity, fn)
	r.mu.Lock()
	e := r.funcs[name]
	e.pure = true
	e.reads = reads
	r.funcs[name] = e
	r.mu.Unlock()
}

// Has reports whether a symbol is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.funcs[name]
	return ok
}

// Arity returns the declared arity of a symbol (-1 for variadic); the
// second result is false for unknown symbols.
func (r *Registry) Arity(name string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.funcs[name]
	return e.arity, ok
}

// Names returns the sorted registered symbols.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for k := range r.funcs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates a registered query on a system state.
func (r *Registry) Eval(name string, st history.SystemState, args []value.Value) (value.Value, error) {
	r.mu.RLock()
	e, ok := r.funcs[name]
	r.mu.RUnlock()
	if !ok {
		return value.Value{}, fmt.Errorf("query: unknown function %q", name)
	}
	if e.arity >= 0 && len(args) != e.arity {
		return value.Value{}, fmt.Errorf("query: %s expects %d arguments, got %d", name, e.arity, len(args))
	}
	return e.fn(st, args)
}

// RegisterItemField installs a convenience query name(key) that treats
// database item `itemName` as a relation, looks up the row whose column
// `keyCol` equals the argument, and returns that row's `valCol`. This is
// the shape of the paper's price(IBM) over a STOCK-FOR-SALE-style
// relation.
func (r *Registry) RegisterItemField(name, itemName string, schema *relation.Schema, keyCol, valCol string) error {
	ki := schema.ColumnIndex(keyCol)
	vi := schema.ColumnIndex(valCol)
	if ki < 0 || vi < 0 {
		return fmt.Errorf("query: item field columns %q/%q not in schema %s", keyCol, valCol, schema)
	}
	return r.RegisterPure(name, 1, []string{itemName}, func(st history.SystemState, args []value.Value) (value.Value, error) {
		iv, ok := st.GetItem(itemName)
		if !ok {
			return value.Value{}, fmt.Errorf("query: %s: unknown database item %q", name, itemName)
		}
		if iv.Kind() != value.Relation {
			return value.Value{}, fmt.Errorf("query: %s: item %q is %s, want relation", name, itemName, iv.Kind())
		}
		for _, row := range iv.Rows() {
			if row[ki].Equal(args[0]) {
				return row[vi], nil
			}
		}
		return value.Value{}, fmt.Errorf("query: %s: no row with %s = %s", name, keyCol, args[0])
	})
}

// RegisterSelect installs a relational query name() over the database item
// `itemName` that returns the rows satisfying pred, projected onto the
// named columns. This mirrors the paper's RETRIEVE ... WHERE ... example
// (OVERPRICED).
func (r *Registry) RegisterSelect(name, itemName string, schema *relation.Schema, pred func(row []value.Value) bool, projectCols ...string) error {
	for _, c := range projectCols {
		if schema.ColumnIndex(c) < 0 {
			return fmt.Errorf("query: select projection column %q not in schema %s", c, schema)
		}
	}
	return r.RegisterPure(name, 0, []string{itemName}, func(st history.SystemState, args []value.Value) (value.Value, error) {
		iv, ok := st.GetItem(itemName)
		if !ok {
			return value.Value{}, fmt.Errorf("query: %s: unknown database item %q", name, itemName)
		}
		rel, err := relation.FromValue(schema, iv)
		if err != nil {
			return value.Value{}, fmt.Errorf("query: %s: %v", name, err)
		}
		sel := rel.Select(pred)
		if len(projectCols) > 0 {
			sel, err = sel.Project(projectCols...)
			if err != nil {
				return value.Value{}, fmt.Errorf("query: %s: %v", name, err)
			}
		}
		return sel.Value(), nil
	})
}
