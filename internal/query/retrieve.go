package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"ptlactive/internal/history"
	"ptlactive/internal/relation"
	"ptlactive/internal/value"
)

// RegisterRetrieve installs a query written in the paper's RETRIEVE
// syntax (Section 4.1's OVERPRICED example):
//
//	RETRIEVE (STOCK_FOR_SALE.name)
//	    WHERE STOCK_FOR_SALE.price >= 300 AND STOCK_FOR_SALE.category = "tech"
//
// The query reads one relation-valued database item (the relation named in
// the column references), filters rows by the WHERE condition — boolean
// combinations (AND, OR, NOT) of comparisons between columns and literals
// or other columns — and projects the listed columns. Keywords are
// case-insensitive; the item's rows must match the supplied schema. The
// query registers under fnName with arity 0.
func (r *Registry) RegisterRetrieve(fnName, src string, schema *relation.Schema) error {
	q, err := parseRetrieve(src, schema)
	if err != nil {
		return err
	}
	return r.Register(fnName, 0, func(st history.SystemState, args []value.Value) (value.Value, error) {
		iv, ok := st.GetItem(q.item)
		if !ok {
			return value.Value{}, fmt.Errorf("query: %s: unknown database item %q", fnName, q.item)
		}
		rel, err := relation.FromValue(schema, iv)
		if err != nil {
			return value.Value{}, fmt.Errorf("query: %s: %v", fnName, err)
		}
		var evalErr error
		sel := rel.Select(func(row []value.Value) bool {
			if evalErr != nil {
				return false
			}
			ok, err := q.where.eval(row)
			if err != nil {
				evalErr = err
				return false
			}
			return ok
		})
		if evalErr != nil {
			return value.Value{}, fmt.Errorf("query: %s: %v", fnName, evalErr)
		}
		proj, err := sel.Project(q.project...)
		if err != nil {
			return value.Value{}, fmt.Errorf("query: %s: %v", fnName, err)
		}
		return proj.Value(), nil
	})
}

// retrieveQuery is a compiled RETRIEVE statement.
type retrieveQuery struct {
	item    string
	project []string
	where   rexpr
}

// rexpr is a compiled WHERE expression evaluated per row.
type rexpr interface {
	eval(row []value.Value) (bool, error)
}

type rtrue struct{}

func (rtrue) eval([]value.Value) (bool, error) { return true, nil }

type rnot struct{ x rexpr }

func (n rnot) eval(row []value.Value) (bool, error) {
	b, err := n.x.eval(row)
	return !b, err
}

type rbin struct {
	and  bool
	l, r rexpr
}

func (b rbin) eval(row []value.Value) (bool, error) {
	l, err := b.l.eval(row)
	if err != nil {
		return false, err
	}
	if b.and && !l {
		return false, nil
	}
	if !b.and && l {
		return true, nil
	}
	return b.r.eval(row)
}

// roperand is a column index or a literal.
type roperand struct {
	col int // -1 for literal
	lit value.Value
}

func (o roperand) value(row []value.Value) value.Value {
	if o.col >= 0 {
		return row[o.col]
	}
	return o.lit
}

type rcmp struct {
	op   value.CmpOp
	l, r roperand
}

func (c rcmp) eval(row []value.Value) (bool, error) {
	return value.Cmp(c.op, c.l.value(row), c.r.value(row))
}

// parseRetrieve compiles the statement against the schema.
func parseRetrieve(src string, schema *relation.Schema) (*retrieveQuery, error) {
	p := &rparser{toks: rlex(src), schema: schema}
	if !p.acceptKw("retrieve") {
		return nil, p.errf("expected RETRIEVE")
	}
	if !p.accept("(") {
		return nil, p.errf("expected '(' after RETRIEVE")
	}
	q := &retrieveQuery{where: rtrue{}}
	for {
		item, col, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		if q.item == "" {
			q.item = item
		} else if q.item != item {
			return nil, fmt.Errorf("query: retrieve: joins are not supported; projection mixes %q and %q", q.item, item)
		}
		q.project = append(q.project, col)
		if p.accept(",") {
			continue
		}
		break
	}
	if !p.accept(")") {
		return nil, p.errf("expected ')' after projection")
	}
	if p.acceptKw("where") {
		w, item, err := p.orExpr(q.item)
		if err != nil {
			return nil, err
		}
		if item != "" && q.item != item {
			return nil, fmt.Errorf("query: retrieve: WHERE references %q but projection reads %q", item, q.item)
		}
		q.where = w
	}
	if p.pos < len(p.toks) {
		return nil, p.errf("trailing input")
	}
	for _, c := range q.project {
		if schema.ColumnIndex(c) < 0 {
			return nil, fmt.Errorf("query: retrieve: column %q not in schema %s", c, schema)
		}
	}
	return q, nil
}

// rlex tokenizes: identifiers (with dots split off), numbers, strings,
// punctuation and comparison operators.
func rlex(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case strings.ContainsRune("(),.", rune(c)):
			toks = append(toks, string(c))
			i++
		case c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, src[i:i+2])
				i += 2
			} else {
				toks = append(toks, string(c))
				i++
			}
		case c == '=':
			toks = append(toks, "=")
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, "!=")
				i += 2
			} else {
				toks = append(toks, "!")
				i++
			}
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(src) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case c >= '0' && c <= '9' || c == '-':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i
			for j < len(src) && (src[j] == '_' || src[j] == '-' ||
				unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j]))) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			toks = append(toks, string(c))
			i++
		}
	}
	return toks
}

type rparser struct {
	toks   []string
	pos    int
	schema *relation.Schema
}

func (p *rparser) errf(format string, args ...any) error {
	where := "end of input"
	if p.pos < len(p.toks) {
		where = fmt.Sprintf("%q", p.toks[p.pos])
	}
	return fmt.Errorf("query: retrieve: %s at %s", fmt.Sprintf(format, args...), where)
}

func (p *rparser) accept(tok string) bool {
	if p.pos < len(p.toks) && p.toks[p.pos] == tok {
		p.pos++
		return true
	}
	return false
}

func (p *rparser) acceptKw(kw string) bool {
	if p.pos < len(p.toks) && strings.EqualFold(p.toks[p.pos], kw) {
		p.pos++
		return true
	}
	return false
}

// columnRef parses item.column; item names are case-preserved, the dot
// separates tokens.
func (p *rparser) columnRef() (item, col string, err error) {
	if p.pos+2 >= len(p.toks)+1 && p.pos >= len(p.toks) {
		return "", "", p.errf("expected a column reference")
	}
	if p.pos >= len(p.toks) {
		return "", "", p.errf("expected a column reference")
	}
	item = p.toks[p.pos]
	p.pos++
	if !p.accept(".") {
		return "", "", p.errf("expected '.' in column reference")
	}
	if p.pos >= len(p.toks) {
		return "", "", p.errf("expected a column name")
	}
	col = p.toks[p.pos]
	p.pos++
	if p.schema.ColumnIndex(col) < 0 {
		return "", "", fmt.Errorf("query: retrieve: column %q not in schema %s", col, p.schema)
	}
	return item, col, nil
}

func (p *rparser) orExpr(item string) (rexpr, string, error) {
	l, item, err := p.andExpr(item)
	if err != nil {
		return nil, "", err
	}
	for p.acceptKw("or") {
		r, it2, err := p.andExpr(item)
		if err != nil {
			return nil, "", err
		}
		item = it2
		l = rbin{and: false, l: l, r: r}
	}
	return l, item, nil
}

func (p *rparser) andExpr(item string) (rexpr, string, error) {
	l, item, err := p.unary(item)
	if err != nil {
		return nil, "", err
	}
	for p.acceptKw("and") {
		r, it2, err := p.unary(item)
		if err != nil {
			return nil, "", err
		}
		item = it2
		l = rbin{and: true, l: l, r: r}
	}
	return l, item, nil
}

func (p *rparser) unary(item string) (rexpr, string, error) {
	if p.acceptKw("not") {
		x, item, err := p.unary(item)
		if err != nil {
			return nil, "", err
		}
		return rnot{x: x}, item, nil
	}
	if p.accept("(") {
		x, item, err := p.orExpr(item)
		if err != nil {
			return nil, "", err
		}
		if !p.accept(")") {
			return nil, "", p.errf("expected ')'")
		}
		return x, item, nil
	}
	// Bare boolean literal as a whole condition (unless it is the left
	// operand of a comparison).
	if p.pos < len(p.toks) && !p.cmpFollows(p.pos+1) {
		if strings.EqualFold(p.toks[p.pos], "true") {
			p.pos++
			return rtrue{}, item, nil
		}
		if strings.EqualFold(p.toks[p.pos], "false") {
			p.pos++
			return rnot{x: rtrue{}}, item, nil
		}
	}
	return p.comparison(item)
}

// cmpFollows reports whether the token at position i is a comparison
// operator.
func (p *rparser) cmpFollows(i int) bool {
	if i >= len(p.toks) {
		return false
	}
	switch p.toks[i] {
	case "=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *rparser) comparison(item string) (rexpr, string, error) {
	l, item, err := p.operand(item)
	if err != nil {
		return nil, "", err
	}
	var op value.CmpOp
	switch {
	case p.accept("="):
		op = value.EQ
	case p.accept("!="):
		op = value.NE
	case p.accept("<="):
		op = value.LE
	case p.accept("<"):
		op = value.LT
	case p.accept(">="):
		op = value.GE
	case p.accept(">"):
		op = value.GT
	default:
		return nil, "", p.errf("expected a comparison operator")
	}
	r, item, err := p.operand(item)
	if err != nil {
		return nil, "", err
	}
	return rcmp{op: op, l: l, r: r}, item, nil
}

func (p *rparser) operand(item string) (roperand, string, error) {
	if p.pos >= len(p.toks) {
		return roperand{}, "", p.errf("expected an operand")
	}
	tok := p.toks[p.pos]
	switch {
	case strings.HasPrefix(tok, `"`):
		p.pos++
		s, err := strconv.Unquote(tok)
		if err != nil {
			return roperand{}, "", p.errf("bad string literal %s", tok)
		}
		return roperand{col: -1, lit: value.NewString(s)}, item, nil
	case tok != "" && (tok[0] >= '0' && tok[0] <= '9' || tok[0] == '-'):
		p.pos++
		if strings.Contains(tok, ".") {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return roperand{}, "", p.errf("bad number %s", tok)
			}
			return roperand{col: -1, lit: value.NewFloat(f)}, item, nil
		}
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return roperand{}, "", p.errf("bad number %s", tok)
		}
		return roperand{col: -1, lit: value.NewInt(n)}, item, nil
	case strings.EqualFold(tok, "true"):
		p.pos++
		return roperand{col: -1, lit: value.True}, item, nil
	case strings.EqualFold(tok, "false"):
		p.pos++
		return roperand{col: -1, lit: value.False}, item, nil
	default:
		it, col, err := p.columnRef()
		if err != nil {
			return roperand{}, "", err
		}
		if item == "" {
			item = it
		} else if it != item {
			return roperand{}, "", fmt.Errorf("query: retrieve: joins are not supported; WHERE mixes %q and %q", item, it)
		}
		return roperand{col: p.schema.ColumnIndex(col)}, item, nil
	}
}
