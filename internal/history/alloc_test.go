package history

import (
	"fmt"
	"testing"

	"ptlactive/internal/value"
)

// TestDBStateAllocs gates the wrapper layer over internal/pmap: the
// small-update operations the commit path performs must stay at path
// copies (pmap has its own gate on the map internals; this one catches
// a defensive copy or re-sort sneaking into DBState itself).
func TestDBStateAllocs(t *testing.T) {
	big := EmptyDB()
	for i := 0; i < 100000; i++ {
		big = big.With(fmt.Sprintf("item%06d", i), value.NewInt(int64(i)))
	}
	next := big.With("item050000", value.NewInt(-1))

	cases := []struct {
		name  string
		limit float64
		fn    func()
	}{
		{"with100k", 96, func() { big.With("item050000", value.NewInt(-1)) }},
		{"without100k", 96, func() { big.Without("item050000") }},
		{"get", 0, func() { big.Get("item099999") }},
		// Comparing a state against its one-update successor walks only
		// the unshared path; comparing a state to itself is pointer work.
		{"equalAdjacent", 0, func() { big.Equal(next) }},
		{"rangeEarlyStop", 0, func() {
			n := 0
			big.Range(func(string, value.Value) bool { n++; return n < 10 })
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := testing.AllocsPerRun(100, c.fn); got > c.limit {
				t.Fatalf("%s: %.1f allocs/op, limit %.0f", c.name, got, c.limit)
			}
		})
	}
}
