// Package history implements the transaction-time system model of
// Section 2: database states, system states (S, E) with timestamps, and
// system histories with the paper's invariants — at most one transaction
// commit per state, database state changes only at commits, strictly
// increasing timestamps.
package history

import (
	"fmt"
	"sort"
	"strings"

	"ptlactive/internal/event"
	"ptlactive/internal/pmap"
	"ptlactive/internal/value"
)

// TimeItem is the reserved data item holding each state's timestamp
// (Section 2: "the value of this time stamp is given by a data-item called
// time").
const TimeItem = "time"

// DBState is an immutable mapping from database item names to values.
// Mutating operations return a new state that shares all untouched
// structure with its parent (internal/pmap): a commit touching u of n
// items costs O(u × log n), not a full-map copy, and consecutive system
// states share everything the commit left alone — the structural form
// of the model's "the database only changes at commit points".
type DBState struct {
	m pmap.Map[value.Value]
}

// valueEq adapts value.Value.Equal for the pmap callbacks.
func valueEq(a, b value.Value) bool { return a.Equal(b) }

// EmptyDB returns the empty database state.
func EmptyDB() DBState { return DBState{} }

// NewDB builds a state from an item map.
func NewDB(items map[string]value.Value) DBState {
	return DBState{m: pmap.Map[value.Value]{}.WithAll(items)}
}

// Get returns the value of an item; ok is false if the item is absent.
func (d DBState) Get(name string) (value.Value, bool) {
	return d.m.Get(name)
}

// With returns a new state with one item set.
func (d DBState) With(name string, v value.Value) DBState {
	return DBState{m: d.m.With(name, v)}
}

// WithAll returns a new state with all the given updates applied.
func (d DBState) WithAll(updates map[string]value.Value) DBState {
	return DBState{m: d.m.WithAll(updates)}
}

// Without returns a new state with an item removed.
func (d DBState) Without(name string) DBState {
	return DBState{m: d.m.Without(name)}
}

// Range calls fn for every item in ascending name order until fn
// returns false. The underlying map is ordered, so this is the
// deterministic iterator — use it on hot paths (persist encode, state
// dumps) instead of Items, which allocates the name slice.
func (d DBState) Range(fn func(name string, v value.Value) bool) {
	d.m.Range(fn)
}

// Items returns the sorted item names. It allocates; prefer Range where
// the names are only iterated.
func (d DBState) Items() []string {
	names := make([]string, 0, d.m.Len())
	d.m.Range(func(name string, _ value.Value) bool {
		names = append(names, name)
		return true
	})
	return names
}

// Len returns the number of items.
func (d DBState) Len() int { return d.m.Len() }

// Equal reports whether two states map identical items to equal values.
// States that share structure are compared by walking only the unshared
// part: a state against its own successor costs O(updates × log n), and
// event states (which reuse the database wholesale) compare in O(1).
func (d DBState) Equal(o DBState) bool {
	return d.m.Equal(o.m, valueEq)
}

// Diff calls fn, in ascending name order, for every item present in
// exactly one of the two states or mapped to unequal values, walking
// only structure the states do not share. It reconstructs "what did
// this commit change" from two adjacent states in O(changes × log n).
func (d DBState) Diff(o DBState, fn func(name string) bool) {
	d.m.Diff(o.m, valueEq, fn)
}

// String renders the state deterministically.
func (d DBState) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	first := true
	d.m.Range(func(name string, v value.Value) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%s=%s", name, v)
		return true
	})
	sb.WriteByte(']')
	return sb.String()
}

// SystemState is the pair (S, E) with its timestamp: a snapshot of the
// database plus the set of events occurring at that instant.
type SystemState struct {
	// DB is the database state S.
	DB DBState
	// Events is the event set E.
	Events *event.Set
	// TS is the global-clock timestamp of the state.
	TS int64
}

// Time returns the state's timestamp as a Value, i.e. the value of the
// reserved "time" data item.
func (s SystemState) Time() value.Value { return value.NewInt(s.TS) }

// GetItem looks up a database item, resolving the reserved "time" item to
// the state's timestamp.
func (s SystemState) GetItem(name string) (value.Value, bool) {
	if name == TimeItem {
		return s.Time(), true
	}
	return s.DB.Get(name)
}

// String renders the state compactly.
func (s SystemState) String() string {
	return fmt.Sprintf("@%d %s %s", s.TS, s.DB, s.Events)
}

// History is a finite sequence of system states. Append enforces the
// model's invariants.
type History struct {
	states []SystemState
}

// New returns an empty history.
func New() *History { return &History{} }

// Len returns the number of states.
func (h *History) Len() int { return len(h.states) }

// At returns state i (0-based).
func (h *History) At(i int) SystemState { return h.states[i] }

// Last returns the most recent state; ok is false when the history is
// empty.
func (h *History) Last() (SystemState, bool) {
	if len(h.states) == 0 {
		return SystemState{}, false
	}
	return h.states[len(h.states)-1], true
}

// States returns the backing slice; it must not be mutated.
func (h *History) States() []SystemState { return h.states }

// Append adds a new system state, enforcing:
//   - strictly increasing timestamps (Section 2: simultaneous events share
//     a single state, so distinct states have distinct times);
//   - at most one transaction_commit event per state;
//   - the database state may differ from its predecessor only when the
//     event set contains a transaction_commit.
func (h *History) Append(s SystemState) error {
	if prev, ok := h.Last(); ok {
		if s.TS <= prev.TS {
			return fmt.Errorf("history: timestamp %d not after previous %d", s.TS, prev.TS)
		}
		if s.Events.CommitCount() == 0 && !s.DB.Equal(prev.DB) {
			return fmt.Errorf("history: database changed at %d without a transaction_commit event", s.TS)
		}
	}
	if n := s.Events.CommitCount(); n > 1 {
		return fmt.Errorf("history: %d simultaneous transaction commits at %d", n, s.TS)
	}
	h.states = append(h.states, s)
	return nil
}

// AppendUnchecked appends a state enforcing only strictly increasing
// timestamps. The valid-time model (internal/vtime) uses it: there the
// database legitimately changes at update instants rather than only at
// commits, so the transaction-time invariant of Append does not apply.
func (h *History) AppendUnchecked(s SystemState) {
	if prev, ok := h.Last(); ok && s.TS <= prev.TS {
		panic(fmt.Sprintf("history: timestamp %d not after previous %d", s.TS, prev.TS))
	}
	h.states = append(h.states, s)
}

// MustAppend is Append that panics on error; for tests and generators
// whose inputs are valid by construction.
func (h *History) MustAppend(s SystemState) {
	if err := h.Append(s); err != nil {
		panic(err)
	}
}

// CommitPoints returns the indices of states whose event set contains a
// transaction_commit (Section 8: "a commit point in a history h is a state
// that contains the commit transaction event").
func (h *History) CommitPoints() []int {
	var out []int
	for i, s := range h.states {
		if s.Events.CommitCount() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Prefix returns a view of the first n states. The returned history shares
// storage with h and must not be appended to while h is in use.
func (h *History) Prefix(n int) *History {
	if n < 0 || n > len(h.states) {
		panic(fmt.Sprintf("history: prefix %d out of range 0..%d", n, len(h.states)))
	}
	return &History{states: h.states[:n:n]}
}

// PrefixAtTime returns the longest prefix whose states all have
// timestamps <= t.
func (h *History) PrefixAtTime(t int64) *History {
	n := sort.Search(len(h.states), func(i int) bool { return h.states[i].TS > t })
	return h.Prefix(n)
}

// Clone returns an independent copy (states are value types and shared).
func (h *History) Clone() *History {
	c := &History{states: make([]SystemState, len(h.states))}
	copy(c.states, h.states)
	return c
}

// String renders the history one state per line.
func (h *History) String() string {
	var sb strings.Builder
	for i, s := range h.states {
		fmt.Fprintf(&sb, "%4d: %s\n", i, s)
	}
	return sb.String()
}

// Builder incrementally constructs a valid history from update/commit
// operations; it is the convenience layer used by tests, examples and the
// workload generators. The active-database engine in internal/adb builds
// its histories through a Builder too.
type Builder struct {
	h       *History
	db      DBState
	pending *event.Set
	now     int64
}

// NewBuilder starts a builder with an initial database state. The first
// state is appended at time t0 with an empty event set.
func NewBuilder(db DBState, t0 int64) *Builder {
	b := &Builder{h: New(), db: db, now: t0}
	b.h.MustAppend(SystemState{DB: db, Events: event.NewSet(), TS: t0})
	return b
}

// Now returns the timestamp of the latest state.
func (b *Builder) Now() int64 { return b.now }

// DB returns the current database state.
func (b *Builder) DB() DBState { return b.db }

// History returns the history built so far.
func (b *Builder) History() *History { return b.h }

// Event appends a new state at time t containing the given events and an
// unchanged database.
func (b *Builder) Event(t int64, events ...event.Event) error {
	s := SystemState{DB: b.db, Events: event.NewSet(events...), TS: t}
	if err := b.h.Append(s); err != nil {
		return err
	}
	b.now = t
	return nil
}

// Commit appends a commit state at time t: the event set contains
// transaction_commit(txn) plus extra events, and the database reflects
// exactly the transaction's updates.
func (b *Builder) Commit(t int64, txn int64, updates map[string]value.Value, extra ...event.Event) error {
	events := append([]event.Event{event.New(event.TransactionCommit, value.NewInt(txn))}, extra...)
	ndb := b.db.WithAll(updates)
	s := SystemState{DB: ndb, Events: event.NewSet(events...), TS: t}
	if err := b.h.Append(s); err != nil {
		return err
	}
	b.db = ndb
	b.now = t
	return nil
}
