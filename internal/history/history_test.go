package history

import (
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/value"
)

func TestDBStateImmutability(t *testing.T) {
	d0 := EmptyDB()
	d1 := d0.With("price", value.NewFloat(10))
	if _, ok := d0.Get("price"); ok {
		t.Fatal("With mutated the original state")
	}
	v, ok := d1.Get("price")
	if !ok || v.AsFloat() != 10 {
		t.Fatal("With lost the update")
	}
	d2 := d1.WithAll(map[string]value.Value{"price": value.NewFloat(20), "dj": value.NewInt(3900)})
	if v, _ := d1.Get("price"); v.AsFloat() != 10 {
		t.Fatal("WithAll mutated the original")
	}
	if v, _ := d2.Get("price"); v.AsFloat() != 20 {
		t.Fatal("WithAll lost update")
	}
	if d2.WithAll(nil).Len() != d2.Len() {
		t.Fatal("WithAll(nil) should be identity")
	}
	d3 := d2.Without("dj")
	if _, ok := d3.Get("dj"); ok || d2.Len() != 2 {
		t.Fatal("Without wrong")
	}
}

func TestDBStateEqualItemsString(t *testing.T) {
	a := NewDB(map[string]value.Value{"x": value.NewInt(1), "y": value.NewInt(2)})
	b := EmptyDB().With("y", value.NewInt(2)).With("x", value.NewInt(1))
	if !a.Equal(b) {
		t.Fatal("equal states not Equal")
	}
	if a.Equal(b.With("x", value.NewInt(3))) || a.Equal(EmptyDB()) {
		t.Fatal("unequal states Equal")
	}
	if got := a.Items(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("Items = %v", got)
	}
	if a.String() != "[x=1, y=2]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestSystemStateTimeItem(t *testing.T) {
	s := SystemState{DB: EmptyDB().With("a", value.NewInt(5)), Events: event.NewSet(), TS: 42}
	v, ok := s.GetItem(TimeItem)
	if !ok || v.AsInt() != 42 {
		t.Fatal("time item should resolve to the timestamp")
	}
	v, ok = s.GetItem("a")
	if !ok || v.AsInt() != 5 {
		t.Fatal("regular item lookup failed")
	}
	if _, ok := s.GetItem("zzz"); ok {
		t.Fatal("missing item should miss")
	}
}

func commitEv(txn int64) event.Event {
	return event.New(event.TransactionCommit, value.NewInt(txn))
}

func TestHistoryInvariants(t *testing.T) {
	h := New()
	db := EmptyDB().With("x", value.NewInt(1))
	if err := h.Append(SystemState{DB: db, Events: event.NewSet(), TS: 1}); err != nil {
		t.Fatal(err)
	}
	// Non-increasing timestamp rejected.
	if err := h.Append(SystemState{DB: db, Events: event.NewSet(), TS: 1}); err == nil {
		t.Error("equal timestamp should be rejected")
	}
	// DB change without commit rejected.
	if err := h.Append(SystemState{DB: db.With("x", value.NewInt(2)), Events: event.NewSet(), TS: 2}); err == nil {
		t.Error("db change without commit should be rejected")
	}
	// Two simultaneous commits rejected.
	two := event.NewSet(commitEv(1), commitEv(2))
	if err := h.Append(SystemState{DB: db, Events: two, TS: 2}); err == nil {
		t.Error("two commits in one state should be rejected")
	}
	// Proper commit accepted.
	if err := h.Append(SystemState{DB: db.With("x", value.NewInt(2)), Events: event.NewSet(commitEv(1)), TS: 2}); err != nil {
		t.Errorf("valid commit rejected: %v", err)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHistoryAccessors(t *testing.T) {
	h := New()
	if _, ok := h.Last(); ok {
		t.Fatal("Last on empty history")
	}
	h.MustAppend(SystemState{DB: EmptyDB(), Events: event.NewSet(), TS: 1})
	h.MustAppend(SystemState{DB: EmptyDB(), Events: event.NewSet(commitEv(1)), TS: 3})
	h.MustAppend(SystemState{DB: EmptyDB(), Events: event.NewSet(), TS: 7})
	last, ok := h.Last()
	if !ok || last.TS != 7 {
		t.Fatal("Last wrong")
	}
	if h.At(1).TS != 3 || len(h.States()) != 3 {
		t.Fatal("At/States wrong")
	}
	if cps := h.CommitPoints(); len(cps) != 1 || cps[0] != 1 {
		t.Fatalf("CommitPoints = %v", cps)
	}
	if p := h.Prefix(2); p.Len() != 2 || p.At(1).TS != 3 {
		t.Fatal("Prefix wrong")
	}
	if p := h.PrefixAtTime(3); p.Len() != 2 {
		t.Fatalf("PrefixAtTime(3).Len = %d", p.Len())
	}
	if p := h.PrefixAtTime(0); p.Len() != 0 {
		t.Fatal("PrefixAtTime before start should be empty")
	}
	if p := h.PrefixAtTime(100); p.Len() != 3 {
		t.Fatal("PrefixAtTime after end should be full")
	}
	c := h.Clone()
	c.MustAppend(SystemState{DB: EmptyDB(), Events: event.NewSet(), TS: 9})
	if h.Len() != 3 || c.Len() != 4 {
		t.Fatal("Clone not independent")
	}
	defer func() {
		if recover() == nil {
			t.Error("Prefix out of range should panic")
		}
	}()
	h.Prefix(99)
}

func TestMustAppendPanics(t *testing.T) {
	h := New()
	h.MustAppend(SystemState{DB: EmptyDB(), Events: event.NewSet(), TS: 5})
	defer func() {
		if recover() == nil {
			t.Error("MustAppend should panic on invalid state")
		}
	}()
	h.MustAppend(SystemState{DB: EmptyDB(), Events: event.NewSet(), TS: 5})
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(EmptyDB().With("price", value.NewFloat(10)), 0)
	if b.Now() != 0 || b.History().Len() != 1 {
		t.Fatal("builder init wrong")
	}
	if err := b.Event(1, event.New("tick")); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(2, 7, map[string]value.Value{"price": value.NewFloat(20)}, event.New("update_stocks")); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.DB().Get("price"); v.AsFloat() != 20 {
		t.Fatal("builder db not updated")
	}
	h := b.History()
	if h.Len() != 3 {
		t.Fatalf("history Len = %d", h.Len())
	}
	st := h.At(2)
	if !st.Events.Contains(event.New("update_stocks")) || st.Events.CommitCount() != 1 {
		t.Fatal("commit state events wrong")
	}
	if v, _ := st.DB.Get("price"); v.AsFloat() != 20 {
		t.Fatal("commit state db wrong")
	}
	// Out-of-order event propagates the error.
	if err := b.Event(1); err == nil {
		t.Error("out-of-order event should error")
	}
	if err := b.Commit(1, 8, nil); err != nil {
		// The failing commit must not corrupt the builder db.
		if v, _ := b.DB().Get("price"); v.AsFloat() != 20 {
			t.Error("failed commit corrupted builder state")
		}
	} else {
		t.Error("out-of-order commit should error")
	}
}

func TestHistoryString(t *testing.T) {
	b := NewBuilder(EmptyDB(), 0)
	_ = b.Event(1, event.New("tick"))
	s := b.History().String()
	if s == "" {
		t.Fatal("String should be nonempty")
	}
}
