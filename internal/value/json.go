package value

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// This file is the canonical kind-tagged JSON codec for values, shared by
// the history exporter (internal/histio) and the rule-formula codec
// (internal/ptl); both live above packages that import ptl, so the codec
// has to sit at the bottom of the import graph. The grammar:
//
//	{"int": 3} {"float": 2.5} {"str": "x"} {"bool": true} {"null": true}
//	{"tuple": [...]} {"rel": [[...], ...]}
//
// Non-finite floats are not representable as JSON numbers; they are
// encoded as the strings "NaN", "+Inf" and "-Inf" under the float tag.

// EncodeJSON renders the value in its kind-tagged JSON form.
func EncodeJSON(v Value) (json.RawMessage, error) {
	switch v.Kind() {
	case Null:
		return json.RawMessage(`{"null":true}`), nil
	case Bool:
		return jsonTag("bool", v.AsBool())
	case Int:
		return jsonTag("int", v.AsInt())
	case Float:
		f := v.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return jsonTag("float", strconv.FormatFloat(f, 'g', -1, 64))
		}
		return jsonTag("float", f)
	case String:
		return jsonTag("str", v.AsString())
	case Tuple:
		elems := make([]json.RawMessage, v.TupleLen())
		for i := 0; i < v.TupleLen(); i++ {
			e, err := EncodeJSON(v.TupleAt(i))
			if err != nil {
				return nil, err
			}
			elems[i] = e
		}
		return jsonTag("tuple", elems)
	case Relation:
		rows := make([][]json.RawMessage, 0, v.NumRows())
		for _, row := range v.Rows() {
			enc := make([]json.RawMessage, len(row))
			for i, cell := range row {
				e, err := EncodeJSON(cell)
				if err != nil {
					return nil, err
				}
				enc[i] = e
			}
			rows = append(rows, enc)
		}
		return jsonTag("rel", rows)
	default:
		return nil, fmt.Errorf("value: unknown kind %s", v.Kind())
	}
}

func jsonTag(name string, payload any) (json.RawMessage, error) {
	return json.Marshal(map[string]any{name: payload})
}

// DecodeJSON parses a kind-tagged JSON value.
func DecodeJSON(raw json.RawMessage) (Value, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return Value{}, fmt.Errorf("value: %w", err)
	}
	if len(m) != 1 {
		return Value{}, fmt.Errorf("value: must have exactly one kind tag, got %d", len(m))
	}
	for kind, payload := range m {
		switch kind {
		case "null":
			return Value{}, nil
		case "bool":
			var b bool
			if err := json.Unmarshal(payload, &b); err != nil {
				return Value{}, err
			}
			return NewBool(b), nil
		case "int":
			var i int64
			if err := json.Unmarshal(payload, &i); err != nil {
				return Value{}, err
			}
			return NewInt(i), nil
		case "float":
			var f float64
			if err := json.Unmarshal(payload, &f); err != nil {
				// Non-finite floats are encoded as strings.
				var s string
				if serr := json.Unmarshal(payload, &s); serr != nil {
					return Value{}, err
				}
				pf, perr := strconv.ParseFloat(s, 64)
				if perr != nil {
					return Value{}, fmt.Errorf("value: float %q: %w", s, perr)
				}
				return NewFloat(pf), nil
			}
			return NewFloat(f), nil
		case "str":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return Value{}, err
			}
			return NewString(s), nil
		case "tuple":
			var elems []json.RawMessage
			if err := json.Unmarshal(payload, &elems); err != nil {
				return Value{}, err
			}
			out := make([]Value, len(elems))
			for i, e := range elems {
				v, err := DecodeJSON(e)
				if err != nil {
					return Value{}, err
				}
				out[i] = v
			}
			return NewTuple(out...), nil
		case "rel":
			var rows [][]json.RawMessage
			if err := json.Unmarshal(payload, &rows); err != nil {
				return Value{}, err
			}
			out := make([][]Value, len(rows))
			for i, row := range rows {
				out[i] = make([]Value, len(row))
				for j, cell := range row {
					v, err := DecodeJSON(cell)
					if err != nil {
						return Value{}, err
					}
					out[i][j] = v
				}
			}
			return NewRelation(out), nil
		default:
			return Value{}, fmt.Errorf("value: unknown kind tag %q", kind)
		}
	}
	return Value{}, fmt.Errorf("value: empty")
}
