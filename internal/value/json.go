package value

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// This file is the canonical kind-tagged JSON codec for values, shared by
// the history exporter (internal/histio) and the rule-formula codec
// (internal/ptl); both live above packages that import ptl, so the codec
// has to sit at the bottom of the import graph. The grammar:
//
//	{"int": 3} {"float": 2.5} {"str": "x"} {"bool": true} {"null": true}
//	{"tuple": [...]} {"rel": [[...], ...]}
//
// Non-finite floats are not representable as JSON numbers; they are
// encoded as the strings "NaN", "+Inf" and "-Inf" under the float tag.

// EncodeJSON renders the value in its kind-tagged JSON form.
//
// The scalar kinds take a direct append path that produces exactly the
// bytes json.Marshal would (compact object, same escaping) — values are
// encoded once per commit on the wire and once per WAL record, so the
// map-and-reflect cost of json.Marshal is a measurable share of a
// commit (E13).
func EncodeJSON(v Value) (json.RawMessage, error) {
	switch v.Kind() {
	case Null:
		return json.RawMessage(`{"null":true}`), nil
	case Bool:
		if v.AsBool() {
			return json.RawMessage(`{"bool":true}`), nil
		}
		return json.RawMessage(`{"bool":false}`), nil
	case Int:
		b := make([]byte, 0, 28)
		b = append(b, `{"int":`...)
		b = strconv.AppendInt(b, v.AsInt(), 10)
		b = append(b, '}')
		return b, nil
	case Float:
		f := v.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return jsonTag("float", strconv.FormatFloat(f, 'g', -1, 64))
		}
		return jsonTag("float", f)
	case String:
		if s := v.AsString(); plainJSONString(s) {
			b := make([]byte, 0, len(s)+10)
			b = append(b, `{"str":"`...)
			b = append(b, s...)
			b = append(b, '"', '}')
			return b, nil
		}
		return jsonTag("str", v.AsString())
	case Tuple:
		elems := make([]json.RawMessage, v.TupleLen())
		for i := 0; i < v.TupleLen(); i++ {
			e, err := EncodeJSON(v.TupleAt(i))
			if err != nil {
				return nil, err
			}
			elems[i] = e
		}
		return jsonTag("tuple", elems)
	case Relation:
		rows := make([][]json.RawMessage, 0, v.NumRows())
		for _, row := range v.Rows() {
			enc := make([]json.RawMessage, len(row))
			for i, cell := range row {
				e, err := EncodeJSON(cell)
				if err != nil {
					return nil, err
				}
				enc[i] = e
			}
			rows = append(rows, enc)
		}
		return jsonTag("rel", rows)
	default:
		return nil, fmt.Errorf("value: unknown kind %s", v.Kind())
	}
}

func jsonTag(name string, payload any) (json.RawMessage, error) {
	return json.Marshal(map[string]any{name: payload})
}

// plainJSONString reports whether s encodes under json.Marshal as
// itself between quotes: printable ASCII with no `"` or `\` and none of
// the HTML-escaped characters (`<`, `>`, `&`).
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// DecodeJSON parses a kind-tagged JSON value.
//
// The compact scalar forms the encoder's fast path emits are decoded by
// direct inspection; anything else — extra whitespace, escapes, nested
// kinds — takes the full parser below, so every input the slow path
// accepted still decodes identically.
func DecodeJSON(raw json.RawMessage) (Value, error) {
	if v, ok := decodeScalarFast(raw); ok {
		return v, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return Value{}, fmt.Errorf("value: %w", err)
	}
	if len(m) != 1 {
		return Value{}, fmt.Errorf("value: must have exactly one kind tag, got %d", len(m))
	}
	for kind, payload := range m {
		switch kind {
		case "null":
			return Value{}, nil
		case "bool":
			var b bool
			if err := json.Unmarshal(payload, &b); err != nil {
				return Value{}, err
			}
			return NewBool(b), nil
		case "int":
			var i int64
			if err := json.Unmarshal(payload, &i); err != nil {
				return Value{}, err
			}
			return NewInt(i), nil
		case "float":
			var f float64
			if err := json.Unmarshal(payload, &f); err != nil {
				// Non-finite floats are encoded as strings.
				var s string
				if serr := json.Unmarshal(payload, &s); serr != nil {
					return Value{}, err
				}
				pf, perr := strconv.ParseFloat(s, 64)
				if perr != nil {
					return Value{}, fmt.Errorf("value: float %q: %w", s, perr)
				}
				return NewFloat(pf), nil
			}
			return NewFloat(f), nil
		case "str":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return Value{}, err
			}
			return NewString(s), nil
		case "tuple":
			var elems []json.RawMessage
			if err := json.Unmarshal(payload, &elems); err != nil {
				return Value{}, err
			}
			out := make([]Value, len(elems))
			for i, e := range elems {
				v, err := DecodeJSON(e)
				if err != nil {
					return Value{}, err
				}
				out[i] = v
			}
			return NewTuple(out...), nil
		case "rel":
			var rows [][]json.RawMessage
			if err := json.Unmarshal(payload, &rows); err != nil {
				return Value{}, err
			}
			out := make([][]Value, len(rows))
			for i, row := range rows {
				out[i] = make([]Value, len(row))
				for j, cell := range row {
					v, err := DecodeJSON(cell)
					if err != nil {
						return Value{}, err
					}
					out[i][j] = v
				}
			}
			return NewRelation(out), nil
		default:
			return Value{}, fmt.Errorf("value: unknown kind tag %q", kind)
		}
	}
	return Value{}, fmt.Errorf("value: empty")
}

// decodeScalarFast parses exactly the compact scalar encodings —
// `{"null":true}`, `{"bool":…}`, `{"int":N}`, `{"str":"…"}` with no
// whitespace or escapes. ok=false means "not this shape", never an
// error: the caller falls back to the full parser.
func decodeScalarFast(raw json.RawMessage) (Value, bool) {
	switch {
	case string(raw) == `{"null":true}`:
		return Value{}, true
	case string(raw) == `{"bool":true}`:
		return NewBool(true), true
	case string(raw) == `{"bool":false}`:
		return NewBool(false), true
	}
	if len(raw) < 9 || raw[0] != '{' || raw[len(raw)-1] != '}' {
		return Value{}, false
	}
	body := raw[1 : len(raw)-1]
	if rest, ok := cutPrefix(body, `"int":`); ok {
		// Only canonical JSON integers — no "+", no leading zeros — so the
		// fast path accepts nothing the full parser would reject.
		digits := rest
		if len(digits) > 0 && digits[0] == '-' {
			digits = digits[1:]
		}
		if len(digits) == 0 || (digits[0] == '0' && len(digits) > 1) {
			return Value{}, false
		}
		for _, c := range digits {
			if c < '0' || c > '9' {
				return Value{}, false
			}
		}
		i, err := strconv.ParseInt(string(rest), 10, 64)
		if err != nil {
			return Value{}, false
		}
		return NewInt(i), true
	}
	if rest, ok := cutPrefix(body, `"str":"`); ok {
		if len(rest) == 0 || rest[len(rest)-1] != '"' {
			return Value{}, false
		}
		s := string(rest[:len(rest)-1])
		if !plainJSONString(s) {
			return Value{}, false
		}
		return NewString(s), true
	}
	return Value{}, false
}

func cutPrefix(b []byte, prefix string) ([]byte, bool) {
	if len(b) < len(prefix) || string(b[:len(prefix)]) != prefix {
		return nil, false
	}
	return b[len(prefix):], true
}
