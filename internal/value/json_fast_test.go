package value

import (
	"encoding/json"
	"math"
	"testing"
)

// jsonTagSlow is the pre-fast-path encoder shape: the reference the
// direct-append paths must match byte for byte.
func encodeSlow(t *testing.T, v Value) json.RawMessage {
	t.Helper()
	var raw json.RawMessage
	var err error
	switch v.Kind() {
	case Null:
		raw = json.RawMessage(`{"null":true}`)
	case Bool:
		raw, err = jsonTag("bool", v.AsBool())
	case Int:
		raw, err = jsonTag("int", v.AsInt())
	case String:
		raw, err = jsonTag("str", v.AsString())
	default:
		t.Fatalf("encodeSlow: unsupported kind %v", v.Kind())
	}
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestEncodeFastMatchesMarshal(t *testing.T) {
	vals := []Value{
		{}, NewBool(true), NewBool(false),
		NewInt(0), NewInt(1), NewInt(-1), NewInt(42),
		NewInt(math.MaxInt64), NewInt(math.MinInt64),
		NewString(""), NewString("a"), NewString("ibm"),
		NewString("hello world_123.+-:!"),
		// non-plain strings must fall back to json.Marshal escaping
		NewString(`quo"te`), NewString(`back\slash`), NewString("tab\there"),
		NewString("<html> & more"), NewString("unïcode"), NewString("\x00"),
	}
	for _, v := range vals {
		got, err := EncodeJSON(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		want := encodeSlow(t, v)
		if string(got) != string(want) {
			t.Errorf("EncodeJSON(%v) = %s, json.Marshal form = %s", v, got, want)
		}
	}
}

func TestDecodeFastRoundTrip(t *testing.T) {
	vals := []Value{
		{}, NewBool(true), NewBool(false),
		NewInt(0), NewInt(7), NewInt(-99), NewInt(math.MaxInt64), NewInt(math.MinInt64),
		NewString(""), NewString("plain"), NewString(`esc"aped`), NewString("uni code"),
	}
	for _, v := range vals {
		raw, err := EncodeJSON(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeJSON(raw)
		if err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %s: got %v want %v", raw, got, v)
		}
	}
}

// TestDecodeFastNoNewAcceptance feeds the decoder inputs near the fast
// path's shapes that the full parser rejects; the fast path must not
// accept them either.
func TestDecodeFastNoNewAcceptance(t *testing.T) {
	bad := []string{
		`{"int":+5}`, `{"int":05}`, `{"int":1e2}`, `{"int":}`, `{"int":-}`,
		`{"int":5 }`, `{"int":"5"}`, `{"int":99999999999999999999999}`,
		`{"str":}`, `{"str":"}`, `{"bool":maybe}`, `{"null":false,"x":1}`,
	}
	for _, s := range bad {
		if v, err := DecodeJSON(json.RawMessage(s)); err == nil {
			// The full parser must agree this is acceptable.
			var m map[string]json.RawMessage
			if jerr := json.Unmarshal([]byte(s), &m); jerr != nil {
				t.Errorf("DecodeJSON(%s) accepted (%v) but input is not even valid JSON", s, v)
			}
		}
	}
	// Non-compact spellings the fast path skips must still decode via the
	// full parser.
	loose := map[string]Value{
		`{ "int" : 5 }`:      NewInt(5),
		`{"str":"A"}`:        NewString("A"),
		`{"bool": true}`:     NewBool(true),
		"{\n\"int\":\n-3\n}": NewInt(-3),
	}
	for s, want := range loose {
		got, err := DecodeJSON(json.RawMessage(s))
		if err != nil {
			t.Fatalf("DecodeJSON(%s): %v", s, err)
		}
		if !got.Equal(want) {
			t.Errorf("DecodeJSON(%s) = %v, want %v", s, got, want)
		}
	}
}
