package value

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Null: "null", Bool: "bool", Int: "int", Float: "float",
		String: "string", Tuple: "tuple", Relation: "relation", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !NewBool(true).AsBool() || NewBool(false).AsBool() {
		t.Fatal("bool round trip failed")
	}
	if NewInt(-7).AsInt() != -7 {
		t.Fatal("int round trip failed")
	}
	if NewFloat(2.5).AsFloat() != 2.5 {
		t.Fatal("float round trip failed")
	}
	if NewInt(3).AsFloat() != 3.0 {
		t.Fatal("int widening failed")
	}
	if NewString("ibm").AsString() != "ibm" {
		t.Fatal("string round trip failed")
	}
	tp := NewTuple(NewInt(1), NewString("a"))
	if tp.TupleLen() != 2 || tp.TupleAt(1).AsString() != "a" {
		t.Fatal("tuple accessors failed")
	}
	if len(tp.TupleElems()) != 2 {
		t.Fatal("TupleElems length")
	}
	rel := NewRelation([][]Value{{NewInt(1)}, {NewInt(2)}})
	if rel.NumRows() != 2 || len(rel.Rows()) != 2 {
		t.Fatal("relation accessors failed")
	}
	var zero Value
	if !zero.IsNull() || zero.Kind() != Null {
		t.Fatal("zero value should be Null")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	v := NewString("x")
	mustPanic("AsBool", func() { v.AsBool() })
	mustPanic("AsInt", func() { v.AsInt() })
	mustPanic("AsFloat", func() { v.AsFloat() })
	mustPanic("AsString", func() { NewInt(1).AsString() })
	mustPanic("TupleLen", func() { v.TupleLen() })
	mustPanic("TupleAt", func() { v.TupleAt(0) })
	mustPanic("TupleElems", func() { v.TupleElems() })
	mustPanic("Rows", func() { v.Rows() })
	mustPanic("NumRows", func() { v.NumRows() })
}

func TestEqualNumericCrossKind(t *testing.T) {
	if !NewInt(2).Equal(NewFloat(2)) {
		t.Fatal("Int 2 should equal Float 2")
	}
	if NewInt(2).Equal(NewFloat(2.5)) {
		t.Fatal("Int 2 should not equal Float 2.5")
	}
	if NewInt(1).Equal(NewString("1")) {
		t.Fatal("Int should not equal String")
	}
}

func TestEqualComposite(t *testing.T) {
	a := NewTuple(NewInt(1), NewString("x"))
	b := NewTuple(NewFloat(1), NewString("x"))
	if !a.Equal(b) {
		t.Fatal("tuples with numerically equal elements should be equal")
	}
	if a.Equal(NewTuple(NewInt(1))) {
		t.Fatal("tuples of different arity should differ")
	}
	r1 := NewRelation([][]Value{{NewInt(1)}, {NewInt(2)}})
	r2 := NewRelation([][]Value{{NewInt(2)}, {NewInt(1)}})
	if !r1.Equal(r2) {
		t.Fatal("relations should compare as sets")
	}
	r3 := NewRelation([][]Value{{NewInt(1)}})
	if r1.Equal(r3) {
		t.Fatal("relations of different cardinality should differ")
	}
	if !(Value{}).Equal(Value{}) {
		t.Fatal("null equals null")
	}
}

func TestCompare(t *testing.T) {
	type tc struct {
		a, b Value
		want int
	}
	cases := []tc{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NewBool(true), NewBool(false), 1},
		{NewTuple(NewInt(1), NewInt(2)), NewTuple(NewInt(1), NewInt(3)), -1},
		{NewTuple(NewInt(1)), NewTuple(NewInt(1), NewInt(0)), -1},
		{Value{}, Value{}, 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if (got < 0) != (c.want < 0) || (got > 0) != (c.want > 0) {
			t.Errorf("Compare(%v,%v) = %d, want sign of %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := NewString("a").Compare(NewInt(1)); err == nil {
		t.Fatal("cross-kind ordering should error")
	}
	if _, err := NewRelation(nil).Compare(NewRelation(nil)); err == nil {
		t.Fatal("relation ordering should error")
	}
}

func TestKeyDistinguishesValues(t *testing.T) {
	vals := []Value{
		Value{}, NewBool(true), NewBool(false), NewInt(1), NewInt(2),
		NewFloat(1.5), NewString("a"), NewString("b"), NewString(""),
		NewTuple(NewInt(1)), NewTuple(NewInt(1), NewInt(2)),
		NewRelation([][]Value{{NewInt(1)}}),
		NewRelation([][]Value{{NewInt(1)}, {NewInt(2)}}),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
	// Equal values share a key.
	if NewInt(2).Key() != NewFloat(2).Key() {
		t.Error("Int 2 and Float 2 should share a key (they are Equal)")
	}
	r1 := NewRelation([][]Value{{NewInt(1)}, {NewInt(2)}})
	r2 := NewRelation([][]Value{{NewInt(2)}, {NewInt(1)}})
	if r1.Key() != r2.Key() {
		t.Error("set-equal relations should share a key")
	}
}

// TestKeyEmbeddingSafety checks that string lengths in keys prevent
// ambiguity: ("ab","c") must differ from ("a","bc").
func TestKeyEmbeddingSafety(t *testing.T) {
	a := NewTuple(NewString("ab"), NewString("c"))
	b := NewTuple(NewString("a"), NewString("bc"))
	if a.Key() == b.Key() {
		t.Fatal("key ambiguity between shifted strings")
	}
}

func TestString(t *testing.T) {
	cases := map[string]Value{
		"null":   {},
		"true":   NewBool(true),
		"-3":     NewInt(-3),
		"2.5":    NewFloat(2.5),
		`"hi"`:   NewString("hi"),
		"(1, 2)": NewTuple(NewInt(1), NewInt(2)),
		"{(1)}":  NewRelation([][]Value{{NewInt(1)}}),
		"{}":     NewRelation(nil),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestArithInt(t *testing.T) {
	type tc struct {
		op   ArithOp
		a, b int64
		want int64
	}
	cases := []tc{
		{Add, 2, 3, 5}, {Sub, 2, 3, -1}, {Mul, 4, 3, 12},
		{Div, 7, 2, 3}, {Mod, 7, 2, 1},
	}
	for _, c := range cases {
		got, err := Arith(c.op, NewInt(c.a), NewInt(c.b))
		if err != nil {
			t.Fatalf("%d %s %d: %v", c.a, c.op, c.b, err)
		}
		if got.Kind() != Int || got.AsInt() != c.want {
			t.Errorf("%d %s %d = %v, want %d", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithFloatPromotion(t *testing.T) {
	got, err := Arith(Add, NewInt(1), NewFloat(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != Float || got.AsFloat() != 1.5 {
		t.Fatalf("1 + 0.5 = %v, want 1.5 float", got)
	}
	got, err = Arith(Mod, NewFloat(7.5), NewFloat(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.AsFloat() != 1.5 {
		t.Fatalf("7.5 mod 2 = %v, want 1.5", got)
	}
	got, err = Arith(Div, NewFloat(7), NewFloat(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.AsFloat() != 3.5 {
		t.Fatalf("7.0 / 2.0 = %v, want 3.5", got)
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith(Add, NewString("x"), NewInt(1)); err == nil {
		t.Error("arithmetic on string should error")
	}
	if _, err := Arith(Div, NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := Arith(Mod, NewInt(1), NewInt(0)); err == nil {
		t.Error("integer modulo by zero should error")
	}
	if _, err := Arith(Div, NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := Arith(Mod, NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float modulo by zero should error")
	}
}

func TestCmpOps(t *testing.T) {
	one, two := NewInt(1), NewInt(2)
	type tc struct {
		op   CmpOp
		a, b Value
		want bool
	}
	cases := []tc{
		{EQ, one, one, true}, {EQ, one, two, false},
		{NE, one, two, true}, {NE, one, one, false},
		{LT, one, two, true}, {LT, two, one, false},
		{LE, one, one, true}, {LE, two, one, false},
		{GT, two, one, true}, {GT, one, two, false},
		{GE, one, one, true}, {GE, one, two, false},
		{EQ, NewString("a"), NewString("a"), true},
		{NE, NewString("a"), NewInt(1), true},
	}
	for _, c := range cases {
		got, err := Cmp(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("Cmp(%s,%v,%v): %v", c.op, c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Cmp(%s,%v,%v) = %t, want %t", c.op, c.a, c.b, got, c.want)
		}
	}
	if _, err := Cmp(LT, NewString("a"), NewInt(1)); err == nil {
		t.Error("ordering across kinds should error")
	}
}

func TestCmpOpNegateFlip(t *testing.T) {
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("%s: Negate is not an involution", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("%s: Flip is not an involution", op)
		}
	}
	// Semantic checks against random integer pairs.
	f := func(a, b int16) bool {
		va, vb := NewInt(int64(a)), NewInt(int64(b))
		for _, op := range ops {
			r1, _ := Cmp(op, va, vb)
			r2, _ := Cmp(op.Negate(), va, vb)
			if r1 == r2 {
				return false
			}
			r3, _ := Cmp(op.Flip(), vb, va)
			if r1 != r3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpStrings(t *testing.T) {
	if Add.String() != "+" || Sub.String() != "-" || Mul.String() != "*" ||
		Div.String() != "/" || Mod.String() != "mod" || ArithOp(9).String() != "?" {
		t.Error("arith op strings wrong")
	}
	if EQ.String() != "=" || NE.String() != "!=" || LT.String() != "<" ||
		LE.String() != "<=" || GT.String() != ">" || GE.String() != ">=" || CmpOp(9).String() != "?" {
		t.Error("cmp op strings wrong")
	}
}

// Property: Key agrees with Equal on randomly generated scalar values.
func TestKeyEqualAgreement(t *testing.T) {
	gen := func(i int64, f float64, s string, pick uint8) Value {
		switch pick % 4 {
		case 0:
			return NewInt(i % 16)
		case 1:
			return NewFloat(float64(int(f*4) % 4))
		case 2:
			return NewString(s)
		default:
			return NewBool(i%2 == 0)
		}
	}
	prop := func(i1 int64, f1 float64, s1 string, p1 uint8, i2 int64, f2 float64, s2 string, p2 uint8) bool {
		a := gen(i1, f1, s1, p1)
		b := gen(i2, f2, s2, p2)
		return a.Equal(b) == (a.Key() == b.Key())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
