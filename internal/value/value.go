// Package value implements the dynamic value system shared by every layer
// of the reproduction: database items, query results, PTL terms and
// constraint formulas all carry values of this type.
//
// The paper's model is data-model independent; the concrete domains it uses
// in examples are integers (time, counters), reals (stock prices), strings
// (stock names, user ids) and relations (query results such as OVERPRICED).
// We support exactly those, plus booleans and tuples (relation rows).
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind int

const (
	// Null is the zero Value; it compares equal only to itself.
	Null Kind = iota
	// Bool holds a boolean.
	Bool
	// Int holds a 64-bit signed integer. Timestamps are Ints.
	Int
	// Float holds a 64-bit float.
	Float
	// String holds an immutable string.
	String
	// Tuple holds an ordered sequence of scalar values (a relation row).
	Tuple
	// Relation holds a set of equal-width tuples.
	Relation
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Tuple:
		return "tuple"
	case Relation:
		return "relation"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed value. The zero Value is Null.
//
// Values are immutable by convention: once constructed, neither the tuple
// slice nor the relation rows may be mutated. All package functions uphold
// this and callers must too; it is what makes histories and auxiliary
// relations safe to share without copying.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	t    []Value   // Tuple elements
	r    [][]Value // Relation rows; each row has identical width
}

// Bools, reused to avoid allocation in hot paths.
var (
	True  = Value{kind: Bool, b: true}
	False = Value{kind: Bool, b: false}
)

// NewBool returns a boolean Value.
func NewBool(b bool) Value {
	if b {
		return True
	}
	return False
}

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{kind: Int, i: i} }

// NewFloat returns a float Value.
func NewFloat(f float64) Value { return Value{kind: Float, f: f} }

// NewString returns a string Value.
func NewString(s string) Value { return Value{kind: String, s: s} }

// NewTuple returns a tuple Value over the given scalars. The slice is
// retained; the caller must not mutate it afterwards.
func NewTuple(elems ...Value) Value { return Value{kind: Tuple, t: elems} }

// NewRelation returns a relation Value over the given rows. The slice is
// retained; the caller must not mutate it afterwards.
func NewRelation(rows [][]Value) Value { return Value{kind: Relation, r: rows} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the Null value.
func (v Value) IsNull() bool { return v.kind == Null }

// IsNumeric reports whether v is an Int or a Float.
func (v Value) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// AsBool returns the boolean payload; it panics if v is not a Bool.
func (v Value) AsBool() bool {
	if v.kind != Bool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.b
}

// AsInt returns the integer payload; it panics if v is not an Int.
func (v Value) AsInt() int64 {
	if v.kind != Int {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64; it panics if v is
// not numeric.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case Int:
		return float64(v.i)
	case Float:
		return v.f
	}
	panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
}

// AsString returns the string payload; it panics if v is not a String.
func (v Value) AsString() string {
	if v.kind != String {
		panic(fmt.Sprintf("value: AsString on %s", v.kind))
	}
	return v.s
}

// TupleLen returns the arity of a tuple value; it panics otherwise.
func (v Value) TupleLen() int {
	if v.kind != Tuple {
		panic(fmt.Sprintf("value: TupleLen on %s", v.kind))
	}
	return len(v.t)
}

// TupleAt returns element i of a tuple value.
func (v Value) TupleAt(i int) Value {
	if v.kind != Tuple {
		panic(fmt.Sprintf("value: TupleAt on %s", v.kind))
	}
	return v.t[i]
}

// TupleElems returns the underlying elements of a tuple value. The result
// must not be mutated.
func (v Value) TupleElems() []Value {
	if v.kind != Tuple {
		panic(fmt.Sprintf("value: TupleElems on %s", v.kind))
	}
	return v.t
}

// Rows returns the rows of a relation value. The result must not be
// mutated.
func (v Value) Rows() [][]Value {
	if v.kind != Relation {
		panic(fmt.Sprintf("value: Rows on %s", v.kind))
	}
	return v.r
}

// NumRows returns the cardinality of a relation value.
func (v Value) NumRows() int {
	if v.kind != Relation {
		panic(fmt.Sprintf("value: NumRows on %s", v.kind))
	}
	return len(v.r)
}

// Equal reports deep equality. Int and Float compare numerically, so
// NewInt(2).Equal(NewFloat(2)) is true, matching the comparison operators
// of the logic. Relations compare as sets (order-insensitive).
func (v Value) Equal(w Value) bool {
	if v.IsNumeric() && w.IsNumeric() {
		return v.AsFloat() == w.AsFloat()
	}
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case Null:
		return true
	case Bool:
		return v.b == w.b
	case String:
		return v.s == w.s
	case Tuple:
		if len(v.t) != len(w.t) {
			return false
		}
		for i := range v.t {
			if !v.t[i].Equal(w.t[i]) {
				return false
			}
		}
		return true
	case Relation:
		return relationKey(v.r) == relationKey(w.r)
	default:
		return false
	}
}

// Compare orders two values. It returns a negative, zero or positive int
// like strings.Compare. Numerics compare numerically across Int/Float;
// otherwise both values must have the same kind. Bool orders false < true.
// Tuples order lexicographically. Comparing relations or mismatched kinds
// returns an error.
func (v Value) Compare(w Value) (int, error) {
	if v.IsNumeric() && w.IsNumeric() {
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != w.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", v.kind, w.kind)
	}
	switch v.kind {
	case Null:
		return 0, nil
	case Bool:
		switch {
		case v.b == w.b:
			return 0, nil
		case w.b:
			return -1, nil
		default:
			return 1, nil
		}
	case String:
		return strings.Compare(v.s, w.s), nil
	case Tuple:
		n := len(v.t)
		if len(w.t) < n {
			n = len(w.t)
		}
		for i := 0; i < n; i++ {
			c, err := v.t[i].Compare(w.t[i])
			if err != nil || c != 0 {
				return c, err
			}
		}
		return len(v.t) - len(w.t), nil
	default:
		return 0, fmt.Errorf("value: cannot order %s values", v.kind)
	}
}

// Key returns a canonical string key for v, usable as a map key for
// hash-consing and deduplication. Distinct values (under Equal) have
// distinct keys and equal values share one. Numeric values are keyed by
// their float64 representation so Int 2 and Float 2 collide, matching
// Equal.
func (v Value) Key() string {
	var sb strings.Builder
	v.appendKey(&sb)
	return sb.String()
}

func (v Value) appendKey(sb *strings.Builder) {
	switch v.kind {
	case Null:
		sb.WriteString("n;")
	case Bool:
		if v.b {
			sb.WriteString("b1;")
		} else {
			sb.WriteString("b0;")
		}
	case Int:
		sb.WriteString("f")
		sb.WriteString(strconv.FormatFloat(float64(v.i), 'g', -1, 64))
		sb.WriteByte(';')
	case Float:
		sb.WriteString("f")
		sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
		sb.WriteByte(';')
	case String:
		sb.WriteString("s")
		sb.WriteString(strconv.Itoa(len(v.s)))
		sb.WriteByte(':')
		sb.WriteString(v.s)
		sb.WriteByte(';')
	case Tuple:
		sb.WriteString("t(")
		for _, e := range v.t {
			e.appendKey(sb)
		}
		sb.WriteString(");")
	case Relation:
		sb.WriteString("r(")
		sb.WriteString(relationKey(v.r))
		sb.WriteString(");")
	}
}

// relationKey builds an order-insensitive canonical key for rows.
func relationKey(rows [][]Value) string {
	keys := make([]string, len(rows))
	for i, row := range rows {
		keys[i] = NewTuple(row...).Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "null"
	case Bool:
		return strconv.FormatBool(v.b)
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// Keep a float marker so formula printing round-trips: plain "1"
		// would re-parse as an integer.
		if !strings.ContainsAny(s, ".eE") && !strings.ContainsAny(s, "InN") {
			s += ".0"
		}
		return s
	case String:
		return strconv.Quote(v.s)
	case Tuple:
		parts := make([]string, len(v.t))
		for i, e := range v.t {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case Relation:
		parts := make([]string, len(v.r))
		for i, row := range v.r {
			parts[i] = NewTuple(row...).String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return "?"
	}
}

// ArithOp is a binary arithmetic operator.
type ArithOp int

// Arithmetic operators supported in PTL terms.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

// String renders the operator symbol.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "mod"
	default:
		return "?"
	}
}

// Arith applies a binary arithmetic operator. Both operands must be
// numeric. Int op Int stays Int (Div truncates, matching integer division
// in the logic); any Float operand promotes the result to Float. Division
// and modulo by zero are errors.
func Arith(op ArithOp, a, b Value) (Value, error) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Value{}, fmt.Errorf("value: arithmetic %s on %s and %s", op, a.kind, b.kind)
	}
	if a.kind == Int && b.kind == Int {
		x, y := a.i, b.i
		switch op {
		case Add:
			return NewInt(x + y), nil
		case Sub:
			return NewInt(x - y), nil
		case Mul:
			return NewInt(x * y), nil
		case Div:
			if y == 0 {
				return Value{}, fmt.Errorf("value: integer division by zero")
			}
			return NewInt(x / y), nil
		case Mod:
			if y == 0 {
				return Value{}, fmt.Errorf("value: integer modulo by zero")
			}
			return NewInt(x % y), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case Add:
		return NewFloat(x + y), nil
	case Sub:
		return NewFloat(x - y), nil
	case Mul:
		return NewFloat(x * y), nil
	case Div:
		if y == 0 {
			return Value{}, fmt.Errorf("value: division by zero")
		}
		return NewFloat(x / y), nil
	case Mod:
		if y == 0 {
			return Value{}, fmt.Errorf("value: modulo by zero")
		}
		return NewFloat(math.Mod(x, y)), nil
	}
	return Value{}, fmt.Errorf("value: unknown arithmetic operator %d", int(op))
}

// CmpOp is a comparison operator of the logic.
type CmpOp int

// Comparison operators. NE is the negation of EQ and so on; they are kept
// distinct because constraint formulas manipulate them symbolically.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Negate returns the complementary operator: !(a op b) == a op.Negate() b.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	default:
		return op
	}
}

// Flip returns the operator with swapped operands: a op b == b op.Flip() a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

// Holds applies a comparison operator to an ordering result from Compare.
func (op CmpOp) Holds(cmp int) bool {
	switch op {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	default:
		return false
	}
}

// Cmp evaluates a comparison between two values. EQ and NE work on every
// kind (via Equal); ordering operators require comparable kinds.
func Cmp(op CmpOp, a, b Value) (bool, error) {
	switch op {
	case EQ:
		return a.Equal(b), nil
	case NE:
		return !a.Equal(b), nil
	}
	c, err := a.Compare(b)
	if err != nil {
		return false, err
	}
	return op.Holds(c), nil
}
