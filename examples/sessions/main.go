// Sessions: the introduction's motivating condition — "the value of
// attribute A remains positive while user X is logged in" — which needs
// both events and database-state evolution in one condition, the exact
// dichotomy the CA model removes. The program watches the *violation*:
// A dropped to zero or below during some user's open session, with the
// user as a rule parameter.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ptlactive"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"A": ptlactive.Int(3)},
	})

	// Violation: since some @login(U) with no @logout(U) after it, A is
	// now <= 0. The edge condition (A was positive last instant) keeps the
	// rule from refiring every state of a violated session.
	err := eng.AddTrigger("session_violation",
		`item("A") <= 0 and lasttime (item("A") > 0)
		     and ((not @logout(U)) since @login(U))`,
		func(ctx *ptlactive.ActionContext) error {
			u, _ := ctx.Param("U")
			fmt.Printf("%4d  VIOLATION: A dropped non-positive during %s's session\n",
				ctx.FiredAt, u)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	users := []string{"alice", "bob", "carol"}
	logged := map[string]bool{}
	a := int64(3)
	for step := 0; step < 120; step++ {
		ts := eng.Now() + 1
		var evs []ptlactive.Event
		for _, u := range users {
			switch {
			case !logged[u] && rng.Float64() < 0.15:
				logged[u] = true
				evs = append(evs, ptlactive.NewEvent("login", ptlactive.Str(u)))
				fmt.Printf("%4d  login  %s\n", ts, u)
			case logged[u] && rng.Float64() < 0.10:
				logged[u] = false
				evs = append(evs, ptlactive.NewEvent("logout", ptlactive.Str(u)))
				fmt.Printf("%4d  logout %s\n", ts, u)
			}
		}
		if rng.Float64() < 0.5 {
			a += int64(rng.Intn(5)) - 2
			if err := eng.Exec(ts, map[string]ptlactive.Value{"A": ptlactive.Int(a)}, evs...); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if len(evs) == 0 {
			evs = append(evs, ptlactive.NewEvent("tick"))
		}
		if err := eng.Emit(ts, evs...); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ndone: %d violations detected\n", len(eng.Firings()))
}
