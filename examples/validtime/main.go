// Validtime: Section 9's model — a stock sale occurs at 12:50 but is
// posted to the database at 13:00. A tentative trigger fires on the
// retroactive value immediately; a definite trigger (maximum delay
// Delta = 15 minutes) waits until the value can no longer change. The
// program also demonstrates the online/offline divergence of the u1/u2
// integrity-constraint example.
package main

import (
	"fmt"
	"log"

	"ptlactive"
)

func main() {
	// Times in minutes from noon. Delta = 15.
	base := ptlactive.NewDB(map[string]ptlactive.Value{"ibm": ptlactive.Float(70)})
	store := ptlactive.NewValidStore(base, 0, 15)
	reg := ptlactive.NewRegistry()

	cond, err := ptlactive.ParseCondition(`item("ibm") >= 72`)
	if err != nil {
		log.Fatal(err)
	}
	tentative, err := ptlactive.NewValidMonitor(store, reg, cond, ptlactive.Tentative)
	if err != nil {
		log.Fatal(err)
	}
	definite, err := ptlactive.NewValidMonitor(store, reg, cond, ptlactive.Definite)
	if err != nil {
		log.Fatal(err)
	}
	poll := func(label string) {
		tf, err := tentative.Poll()
		if err != nil {
			log.Fatal(err)
		}
		df, err := definite.Poll()
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range tf {
			fmt.Printf("  [%s] tentative trigger fired for valid instant %d\n", label, f.Time)
		}
		for _, f := range df {
			fmt.Printf("  [%s] definite  trigger fired for valid instant %d\n", label, f.Time)
		}
	}

	fmt.Println("12:50 sale (ibm=72) is posted at 13:00 (minute 60), valid at minute 50:")
	if err := store.Begin(1); err != nil {
		log.Fatal(err)
	}
	if err := store.Post(1, "ibm", ptlactive.Float(72), 50, 60); err != nil {
		log.Fatal(err)
	}
	if err := store.Commit(1, 60); err != nil {
		log.Fatal(err)
	}
	poll("t=60")

	fmt.Println("time advances to minute 80 (another transaction commits):")
	if err := store.Begin(2); err != nil {
		log.Fatal(err)
	}
	if err := store.Post(2, "other", ptlactive.Int(1), 80, 80); err != nil {
		log.Fatal(err)
	}
	if err := store.Commit(2, 80); err != nil {
		log.Fatal(err)
	}
	poll("t=80")

	// Online vs offline satisfaction (Section 9.3's example).
	fmt.Println("\nonline vs offline satisfaction of \"u2 only after u1\":")
	b2 := ptlactive.NewDB(map[string]ptlactive.Value{
		"u1": ptlactive.Int(0), "u2": ptlactive.Int(0),
	})
	s2 := ptlactive.NewValidStore(b2, 0, ptlactive.UnlimitedDelay)
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(s2.Begin(1))
	must(s2.Begin(2))
	must(s2.Post(1, "u1", ptlactive.Int(1), 1, 1)) // u1 first in valid time
	must(s2.Post(2, "u2", ptlactive.Int(1), 2, 2)) // then u2
	must(s2.Commit(2, 3))                          // but T2 commits before T1
	must(s2.Commit(1, 4))
	c, err := ptlactive.ParseCondition(
		`not previously (item("u2") = 1 and not previously item("u1") = 1)`)
	if err != nil {
		log.Fatal(err)
	}
	on, err := ptlactive.OnlineSatisfied(s2, reg, c)
	must(err)
	off, err := ptlactive.OfflineSatisfied(s2, reg, c)
	must(err)
	fmt.Printf("  online satisfied:  %t   (u2 was committed while u1 was not yet visible)\n", on)
	fmt.Printf("  offline satisfied: %t   (in valid time u1 does precede u2)\n", off)
}
