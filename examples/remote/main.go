// Remote: the network service layer end to end, all in one process — an
// engine wrapped by the TCP server on a loopback port, a subscriber client
// following the firing stream, and two committer goroutines pushing
// server-timestamped transactions over the wire. The subscriber sees every
// firing exactly once and in engine order, then the server drains cleanly.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/server"
	"ptlactive/internal/value"
)

func main() {
	// Engine plus server on a random loopback port.
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{"temp": value.NewInt(20)},
	})
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("server listening on %s\n", addr)

	// A subscriber session: register the rule, then follow firings from
	// the beginning of the stream.
	watcher, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer watcher.Close()
	err = watcher.AddTrigger("overheat", `item("temp") > 30`)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := watcher.Subscribe(0)
	if err != nil {
		log.Fatal(err)
	}

	// Two committer sessions racing server-assigned timestamps. Writes
	// serialize through the commit pipeline, so the firing order every
	// subscriber observes is the engine's order.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < 3; i++ {
				temp := int64(25 + 10*w + i) // worker 1 crosses the threshold
				ts, err := c.Exec(0, map[string]value.Value{"temp": value.NewInt(temp)})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  committer %d: temp=%d applied at time %d\n", w, temp, ts)
			}
		}(w)
	}
	wg.Wait()

	// Drain the subscription: three commits from worker 1 exceed 30.
	for i := 0; i < 3; i++ {
		select {
		case ev := <-sub.C:
			fmt.Printf("  FIRE %s at time %d (seq %d)\n", ev.Firing.Rule, ev.Firing.Time, ev.Seq)
		case <-time.After(5 * time.Second):
			log.Fatal("subscription stalled")
		}
	}

	// Graceful drain: pending frames flush, sessions get a bye, engine closes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
