// Quickstart: the paper's running example from Section 5 — fire a trigger
// when the price of IBM stock doubles within 10 units of time. The history
// below is the paper's worked example: (10,1) (15,2) (18,5) (25,8); the
// trigger fires at the fourth state.
package main

import (
	"fmt"
	"log"

	"ptlactive"
)

func main() {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"ibm": ptlactive.Float(10)},
		Start:   1,
	})

	// [t <- time] [x <- price-now] previously (price <= 0.5x within 10).
	err := eng.AddTrigger("ibm_doubled",
		`[t <- time] [x <- item("ibm")]
		     previously (item("ibm") <= 0.5 * x and time >= t - 10)`,
		func(ctx *ptlactive.ActionContext) error {
			fmt.Printf("  >> TRIGGER: IBM doubled (fired at time %d)\n", ctx.FiredAt)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// Replay the paper's history: each pair is (price, time).
	for _, p := range [][2]int64{{15, 2}, {18, 5}, {25, 8}} {
		fmt.Printf("commit: ibm = %d at time %d\n", p[0], p[1])
		err := eng.Exec(p[1], map[string]ptlactive.Value{"ibm": ptlactive.Float(float64(p[0]))})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("total firings: %d\n", len(eng.Firings()))
	for _, f := range eng.Firings() {
		fmt.Printf("  rule %s fired at time %d\n", f.Rule, f.Time)
	}
}
