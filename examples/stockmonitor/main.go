// Stockmonitor: the paper's stock-market scenarios on a synthetic feed —
//
//  1. a Dow-Jones crash trigger ("fell more than 250 points in the last
//     120 minutes", Section 1's motivating aggregate-free condition);
//  2. the moving hourly average of the IBM price sampled at update
//     events (Section 6.1's windowed-average formula);
//  3. the Section-7 temporal action: when the IBM price drops below a
//     threshold, buy stock every 10 minutes for the next hour, driven by
//     the executed predicate.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ptlactive"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{
			"px_IBM": ptlactive.Float(100),
			"px_DJ":  ptlactive.Float(4000),
			"shares": ptlactive.Int(0),
		},
	})

	// 1. Crash detection: there was an instant within the last 120 minutes
	// at which the DJ exceeded its current value by more than 250 points.
	err := eng.AddTrigger("dj_crash",
		`[d <- item("px_DJ")] previously <= 120 (item("px_DJ") > d + 250)`,
		func(ctx *ptlactive.ActionContext) error {
			fmt.Printf("%6d  CRASH: Dow fell more than 250 points within 2 hours\n", ctx.FiredAt)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Moving hourly average of IBM above 110, sampled at update events.
	err = eng.AddTrigger("ibm_hot",
		`avg(item("px_IBM"); window 60; @update_stocks("IBM")) > 110
		     and not lasttime avg(item("px_IBM"); window 60; @update_stocks("IBM")) > 110`,
		func(ctx *ptlactive.ActionContext) error {
			fmt.Printf("%6d  HOT: IBM hourly average crossed 110\n", ctx.FiredAt)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Temporal action: on the downward crossing of 80, buy 50 shares,
	// then every 10 minutes for an hour while the price stays below 80.
	buy := func(ctx *ptlactive.ActionContext) error {
		sh, _ := ctx.DB().Get("shares")
		n := sh.AsInt() + 50
		fmt.Printf("%6d  BUY: 50 shares (total %d)\n", ctx.FiredAt, n)
		return ctx.Exec(map[string]ptlactive.Value{"shares": ptlactive.Int(n)})
	}
	err = eng.AddTrigger("buy_start",
		`item("px_IBM") < 80 and lasttime (item("px_IBM") >= 80)`, buy)
	if err != nil {
		log.Fatal(err)
	}
	err = eng.AddTrigger("buy_repeat",
		`executed(buy_start, T) and time - T <= 60 and (time - T) mod 10 = 0
		     and item("px_IBM") < 80`, buy)
	if err != nil {
		log.Fatal(err)
	}

	// Drive a random-walk feed: IBM and DJ tick alternately each minute.
	ibm, dj := 100.0, 4000.0
	for eng.Now() < 600 {
		ts := eng.Now() + 1
		ibm += (rng.Float64()*2 - 1) * 6
		dj += (rng.Float64()*2 - 1) * 60
		updates := map[string]ptlactive.Value{
			"px_IBM": ptlactive.Float(ibm),
			"px_DJ":  ptlactive.Float(dj),
		}
		err := eng.Exec(ts, updates,
			ptlactive.NewEvent("update_stocks", ptlactive.Str("IBM")),
			ptlactive.NewEvent("update_stocks", ptlactive.Str("DJ")))
		if err != nil {
			log.Fatal(err)
		}
	}

	shares, _ := eng.DB().Get("shares")
	fmt.Printf("\nrun finished at time %d: %d firings, holding %s shares\n",
		eng.Now(), len(eng.Firings()), shares)
}
