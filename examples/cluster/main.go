// Cluster: horizontal sharding end to end, all in one process — three
// engine shards owning disjoint hash partitions of the item space behind
// a router that speaks the ordinary wire protocol. A client registers a
// local rule and a cross-shard rule (its event symbol hashes to a
// different shard than its item, so the router plants a hidden relay
// trigger there), commits transactions that route to single shards, and
// follows the globally sequenced merged firing stream. Then the whole
// cluster drains cleanly.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"ptlactive"
	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/cluster"
	"ptlactive/internal/server"
	"ptlactive/internal/value"
)

// keyOwnedBy brute-forces a name the partitioner places on the wanted
// shard, so the example is deterministic about which shard owns what.
func keyOwnedBy(p cluster.Partitioner, shard int, prefix string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s%d", prefix, i)
		if p.Owner(k) == shard {
			return k
		}
	}
}

func main() {
	// Three in-process shards, each with its own commit pipeline, behind
	// one router. With adbrouterd this is `-local 3`; here we assemble
	// the same pieces directly.
	const nShards = 3
	shards := make([]cluster.Shard, nShards)
	for i := range shards {
		shards[i] = cluster.NewLocalShard(adb.NewEngine(adb.Config{}))
	}
	front, err := cluster.New(cluster.Config{Shards: shards})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{Backend: front})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	fmt.Printf("router listening on %s over %d shards\n", ln.Addr(), nShards)

	// Pick names with known owners: an item on shard 0, an event symbol
	// on shard 1. A rule reading both lives on the item's shard and gets
	// a relay trigger on the event's shard.
	p := cluster.NewPartitioner(nShards)
	metric := keyOwnedBy(p, 0, "metric")
	signal := keyOwnedBy(p, 1, "sig")
	fmt.Printf("item %q lives on shard %d, event @%s on shard %d\n",
		metric, p.Owner(metric), signal, p.Owner(signal))

	cli, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Seed the item — the commit routes to shard 0, the only shard its
	// write set touches.
	if _, err := cli.Exec(0, map[string]value.Value{metric: value.NewInt(20)}); err != nil {
		log.Fatal(err)
	}

	// A single-shard rule and a cross-shard rule, registered through the
	// same AddTrigger call a single server would take. The router places
	// both on shard 0 (home of the item footprint) and plants the hidden
	// relay for @sig on shard 1.
	if err := cli.AddTrigger("hot", fmt.Sprintf("item(%q) > 40", metric)); err != nil {
		log.Fatal(err)
	}
	if err := cli.AddTrigger("alarm",
		fmt.Sprintf("@%s and item(%q) > 10", signal, metric)); err != nil {
		log.Fatal(err)
	}

	sub, err := cli.Subscribe(0)
	if err != nil {
		log.Fatal(err)
	}

	// Commits route to the one shard owning everything they touch: the
	// item write to shard 0, the event occurrence to shard 1. The relay
	// forwards @sig's occurrence home, where "alarm" joins it with the
	// item state.
	if _, err := cli.Exec(0, map[string]value.Value{metric: value.NewInt(50)}); err != nil {
		log.Fatal(err)
	}
	if _, err := cli.Emit(0, ptlactive.NewEvent(signal)); err != nil {
		log.Fatal(err)
	}

	// The merged stream is globally sequenced and gap-free: "hot" from
	// the second commit, then — once the relayed occurrence commits on
	// shard 0 — "alarm" plus "hot" again (the item still reads 50).
	for i := 0; i < 3; i++ {
		select {
		case ev := <-sub.C:
			fmt.Printf("  FIRE %s at time %d (seq %d)\n", ev.Firing.Rule, ev.Firing.Time, ev.Seq)
		case <-time.After(5 * time.Second):
			log.Fatal("subscription stalled")
		}
	}

	// Graceful drain: the router barriers every shard, flushes
	// subscribers, and closes the engines.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster drained cleanly")
}
