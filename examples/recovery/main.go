// Recovery: durable engine state. The engine below logs every committed
// operation to a write-ahead log; half-way through the run it "crashes"
// (the process forgets the engine without any shutdown) and is rebuilt
// from disk with Restore, which replays the log tail through the normal
// evaluation path. The recovered engine continues the history and fires
// exactly as an uninterrupted engine would — see DESIGN.md section 4b.
package main

import (
	"fmt"
	"log"
	"os"

	"ptlactive"
)

func main() {
	dir, err := os.MkdirTemp("", "ptlactive-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Rules replay from the log by name; Config.Actions re-attaches their
	// (code, hence unloggable) action parts on recovery.
	action := func(ctx *ptlactive.ActionContext) error {
		fmt.Printf("  >> TRIGGER: IBM doubled (fired at time %d)\n", ctx.FiredAt)
		return nil
	}
	cfg := ptlactive.Config{
		Initial:    map[string]ptlactive.Value{"ibm": ptlactive.Float(10)},
		Start:      1,
		Durability: ptlactive.DurabilityWAL,
		Actions:    map[string]ptlactive.Action{"ibm_doubled": action},
	}

	// First life: two commits, then the process dies without a shutdown.
	eng, err := ptlactive.Restore(cfg, dir)
	if err != nil {
		log.Fatal(err)
	}
	err = eng.AddTrigger("ibm_doubled",
		`[t <- time] [x <- item("ibm")]
		     previously (item("ibm") <= 0.5 * x and time >= t - 10)`,
		action)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range [][2]int64{{15, 2}, {18, 5}} {
		fmt.Printf("commit: ibm = %d at time %d\n", p[0], p[1])
		if err := eng.Exec(p[1], map[string]ptlactive.Value{"ibm": ptlactive.Float(float64(p[0]))}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("-- crash: engine state lost, wal survives --")

	// Second life: Restore recovers the rules and history from the log.
	// The trigger is NOT re-registered — its addrule record replays.
	eng2, err := ptlactive.Restore(cfg, dir)
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	info := eng2.Recovery()
	fmt.Printf("recovered: %d wal records replayed, clock at %d\n",
		info.ReplayedRecords, eng2.Now())

	// The doubling commit lands on the recovered engine and fires.
	fmt.Println("commit: ibm = 25 at time 8")
	if err := eng2.Exec(8, map[string]ptlactive.Value{"ibm": ptlactive.Float(25)}); err != nil {
		log.Fatal(err)
	}
	for _, f := range eng2.Firings() {
		fmt.Printf("  rule %s fired at time %d\n", f.Rule, f.Time)
	}
}
