// Constraints: temporal integrity constraints enforced at commit attempts
// (Section 3: an integrity constraint is the rule whose condition is
// attempts_to_commit(X) plus the negated constraint, and whose action is
// abort(X)). The program enforces two constraints over an account ledger:
//
//  1. the balance never drops below zero (a classic state constraint,
//     expressible without temporal operators);
//  2. the balance never decreases by more than 100 within any window of 5
//     time units (a genuinely temporal dynamic constraint).
package main

import (
	"errors"
	"fmt"
	"log"

	"ptlactive"
)

func main() {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"balance": ptlactive.Int(200)},
	})

	if err := eng.AddConstraint("non_negative", `item("balance") >= 0`); err != nil {
		log.Fatal(err)
	}
	// No instant in the last 5 units had a balance exceeding the current
	// one by more than 100.
	err := eng.AddConstraint("no_crash",
		`[b <- item("balance")] not previously <= 5 (item("balance") > b + 100)`)
	if err != nil {
		log.Fatal(err)
	}

	post := func(ts, amount int64) {
		cur, _ := eng.DB().Get("balance")
		next := cur.AsInt() + amount
		err := eng.Exec(ts, map[string]ptlactive.Value{"balance": ptlactive.Int(next)})
		switch {
		case err == nil:
			fmt.Printf("%4d  commit: balance %d -> %d\n", ts, cur.AsInt(), next)
		case errors.Is(err, ptlactive.ErrConstraintViolation):
			var ce *ptlactive.ConstraintError
			errors.As(err, &ce)
			fmt.Printf("%4d  ABORT:  balance %d -> %d rejected by %q\n",
				ts, cur.AsInt(), next, ce.Constraint)
		default:
			log.Fatal(err)
		}
	}

	post(1, +50)  // 200 -> 250
	post(2, -80)  // 250 -> 170: fine (drop of 80 within 5 units)
	post(3, -40)  // 170 -> 130: ABORT (250 at time 1 exceeds 130+100)
	post(9, -40)  // 170 -> 130: fine (time 1 now outside the window)
	post(10, -40) // 130 -> 90: fine (250@1 out of window; 170@9... none exceed 190)
	post(11, -95) // 90 -> -5: ABORT (non_negative)
	post(12, -90) // 90 -> 0: ABORT (130 at time 9 exceeds 0+100)

	bal, _ := eng.DB().Get("balance")
	fmt.Printf("\nfinal balance: %s\n", bal)
}
