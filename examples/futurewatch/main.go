// Futurewatch: the paper's Section-11 future work in action — monitoring
// *future* temporal-logic conditions (until, eventually, always) by
// formula progression. The scenario is a response-time SLA: every order
// must be filled within 15 time units ("whenever an order is open, it is
// eventually <= 15 filled"), checked per instant, with verdicts emitted
// the moment they are determined.
package main

import (
	"fmt"
	"log"

	"ptlactive"
)

func main() {
	reg := ptlactive.NewRegistry()
	// open_orders counts unfilled orders; the SLA per instant: if an order
	// is open now, the count returns to zero within 15 time units.
	mon, err := ptlactive.CompileFuture(
		`item("open_orders") = 0 or eventually <= 15 (item("open_orders") = 0)`,
		reg, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Drive a small order ledger through an engine; each state is fed to
	// the monitor as it is appended.
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"open_orders": ptlactive.Int(0)},
	})
	open := int64(0)
	post := func(ts int64, delta int64, what string) {
		open += delta
		if err := eng.Exec(ts, map[string]ptlactive.Value{"open_orders": ptlactive.Int(open)}); err != nil {
			log.Fatal(err)
		}
		h := eng.History()
		st := h.At(h.Len() - 1)
		rs, err := mon.Step(st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %-18s open=%d\n", ts, what, open)
		for _, r := range rs {
			verdict := "SLA MET"
			if !r.Holds {
				verdict = "SLA VIOLATED"
			}
			fmt.Printf("      verdict for t=%d: %s\n", r.Time, verdict)
		}
	}
	// Feed the initial state too.
	if rs, err := mon.Step(eng.History().At(0)); err != nil {
		log.Fatal(err)
	} else if len(rs) > 0 {
		fmt.Printf("      verdict for t=0: met=%t\n", rs[0].Holds)
	}

	post(5, +1, "order placed")  // open -> 1
	post(12, +1, "order placed") // open -> 2
	post(18, -2, "both filled")  // open -> 0 within 15 of t=5? 18-5=13 OK
	post(40, +1, "order placed") // open -> 1
	post(58, -1, "filled late")  // 58-40=18 > 15: t=40 violated
	post(60, +1, "order placed") // stays open past the end of the trace

	fmt.Println("--- end of trace ---")
	for _, r := range mon.Finish() {
		verdict := "SLA MET"
		if !r.Holds {
			verdict = "SLA VIOLATED (trace ended with the order open)"
		}
		fmt.Printf("      verdict for t=%d: %s\n", r.Time, verdict)
	}
}
