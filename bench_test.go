// Benchmarks: one testing.B benchmark per reproduction experiment
// (E1-E9, DESIGN.md section 3). The experiment kernels live in
// internal/experiments; cmd/benchtables prints the full sweep tables these
// benchmarks sample.
//
//	go test -bench=. -benchmem
package ptlactive_test

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"ptlactive"
	"ptlactive/internal/adb"
	"ptlactive/internal/experiments"
	"ptlactive/internal/ptlgen"
	"ptlactive/internal/workload"
)

const doubledCondition = `[t <- time] [x <- item("px_IBM")]
    previously (item("px_IBM") <= 0.5 * x and time >= t - 10)`

// BenchmarkE1IncrementalVsNaive measures per-update evaluation cost at
// several history lengths for both engines (the paper's core efficiency
// claim: incremental cost is independent of history length).
func BenchmarkE1IncrementalVsNaive(b *testing.B) {
	f, err := ptlactive.ParseCondition(doubledCondition)
	if err != nil {
		b.Fatal(err)
	}
	reg := ptlactive.NewRegistry()
	for _, n := range []int{100, 1000, 4000} {
		h := workload.Stocks(rand.New(rand.NewSource(1)), workload.DefaultStockConfig(), n)
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunIncremental(f, reg, h); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*h.Len()), "ns/update")
		})
		if n <= 1000 {
			b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.RunNaive(f, reg, h); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*h.Len()), "ns/update")
			})
		}
	}
}

// BenchmarkE2BoundedState measures the time-bound optimization: per-run
// cost and peak retained state with and without it.
func BenchmarkE2BoundedState(b *testing.B) {
	for _, optimized := range []bool{true, false} {
		name := "optimized"
		if !optimized {
			name = "unoptimized"
		}
		b.Run(name, func(b *testing.B) {
			peak := 0
			for i := 0; i < b.N; i++ {
				p, err := experiments.BoundedStateRun(2000, 50, optimized)
				if err != nil {
					b.Fatal(err)
				}
				peak = p
			}
			b.ReportMetric(float64(peak), "peak-nodes")
		})
	}
}

// BenchmarkE3AggregateRewriting compares direct incremental aggregates
// against the Section-6.1.1 rule rewriting and the naive recomputation.
func BenchmarkE3AggregateRewriting(b *testing.B) {
	cond := `sum(item("px_IBM"); time = 0; @update_stocks("IBM")) > 1000000`
	f, err := ptlactive.ParseCondition(cond)
	if err != nil {
		b.Fatal(err)
	}
	reg := ptlactive.NewRegistry()
	h := workload.Stocks(rand.New(rand.NewSource(3)), workload.DefaultStockConfig(), 1000)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunIncremental(f, reg, h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunNaive(f, reg, h); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4FiringThroughput measures end-to-end evaluation throughput on
// random formulas.
func BenchmarkE4FiringThroughput(b *testing.B) {
	reg := ptlgen.Registry()
	for _, depth := range []int{2, 4} {
		rng := rand.New(rand.NewSource(4))
		f := ptlgen.Formula(rng, depth)
		h := ptlgen.History(rng, 500)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunIncremental(f, reg, h); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*h.Len()), "ns/state")
		})
	}
}

// BenchmarkE5ValidTime replays a retroactive workload against tentative
// and definite monitors.
func BenchmarkE5ValidTime(b *testing.B) {
	for _, delta := range []int64{5, 50} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunValidTime(delta, 50)
			}
		})
	}
}

// BenchmarkE6OnlineOffline measures the satisfaction checks over random
// schedules (and asserts Theorem 2 as a side effect).
func BenchmarkE6OnlineOffline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, cd := experiments.OnlineOfflineRun(50, int64(i))
		if cd != 0 {
			b.Fatalf("Theorem 2 violated in benchmark run: %d diverging collapsed schedules", cd)
		}
	}
}

// BenchmarkE7StateBlowup compiles the k-th-from-the-end family for the
// event-expression engine (exponential DFA) and the PTL engine (linear
// registers); the table version prints the state counts.
func BenchmarkE7StateBlowup(b *testing.B) {
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := experiments.E7StateBlowup(true)
			if len(t.Rows) == 0 {
				b.Fatal("empty table")
			}
		}
	})
}

// BenchmarkE8RelevanceFiltering measures the execution model's relevance
// filter: per-run cost with eager vs filtered scheduling.
func BenchmarkE8RelevanceFiltering(b *testing.B) {
	for _, mode := range []struct {
		name  string
		sched adb.Scheduling
	}{{"eager", adb.Eager}, {"relevant", adb.Relevant}} {
		b.Run(mode.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				s, _ := experiments.RelevanceRun(100, 500, mode.sched)
				steps = s
			}
			b.ReportMetric(float64(steps), "eval-steps")
		})
	}
}

// BenchmarkE8ParallelSweep measures the parallel temporal component on a
// wide rule set (R=1000 eager rules, the regime where the per-state sweep
// dominates): Workers=1 is the sequential baseline, Workers=GOMAXPROCS
// shards the sweep across the pool. Firings are byte-identical either way.
func BenchmarkE8ParallelSweep(b *testing.B) {
	const rules, states = 1000, 200
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				s, _ := experiments.RelevanceRunWorkers(rules, states, adb.Eager, workers)
				steps = s
			}
			b.ReportMetric(float64(steps), "eval-steps")
		})
	}
}

// BenchmarkSweepWithSandbox prices the fault-isolation layer on the E8
// parallel sweep (R=1000 eager rules): "plain" is the nil-action baseline
// of BenchmarkE8ParallelSweep, "actions" routes every firing through the
// sandbox's recover wrapper, and "governed" adds the full governance
// surface (sweep budget, circuit breaker, action deadline) with no fault
// ever occurring. The governed-minus-plain delta is the steady-state cost
// of the robustness layer; it is expected to stay within a few percent,
// since the budget check is one comparison per evaluator step and the
// sandbox runs only on the workload's sparse firings.
func BenchmarkSweepWithSandbox(b *testing.B) {
	const rules, states = 1000, 200
	workers := runtime.GOMAXPROCS(0)
	arms := []struct {
		name string
		run  func() int64
	}{
		{"plain", func() int64 {
			s, _ := experiments.RelevanceRunWorkers(rules, states, adb.Eager, workers)
			return s
		}},
		{"actions", func() int64 {
			s, _ := experiments.RelevanceRunGoverned(rules, states, adb.Eager, workers, false)
			return s
		}},
		{"governed", func() int64 {
			s, _ := experiments.RelevanceRunGoverned(rules, states, adb.Eager, workers, true)
			return s
		}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				steps = arm.run()
			}
			b.ReportMetric(float64(steps), "eval-steps")
		})
	}
}

// BenchmarkE9TemporalActions measures the executed-predicate machinery
// driving the Section-7 BUY-STOCK temporal action.
// BenchmarkE13Server measures commit round-trips through the network
// service layer's serializing pipeline, with and without subscriber
// fan-out.
func BenchmarkE13Server(b *testing.B) {
	jsonOnly := []string{"json"}
	for _, cfg := range []struct {
		name string
		run  experiments.E13Config
	}{
		{"1client", experiments.E13Config{Clients: 1, Commits: 100, Codecs: jsonOnly, Window: 1}},
		{"4clients", experiments.E13Config{Clients: 4, Commits: 25, Codecs: jsonOnly, Window: 1}},
		{"fanout4", experiments.E13Config{Clients: 1, Commits: 100, Subs: 4, Codecs: jsonOnly, Window: 1}},
		{"binary", experiments.E13Config{Clients: 1, Commits: 100, Window: 1}},
		{"pipelined_json", experiments.E13Config{Clients: 1, Commits: 100, Codecs: jsonOnly, Window: 64}},
		{"pipelined_binary", experiments.E13Config{Clients: 1, Commits: 100, Window: 64}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dur, _ := experiments.E13RunConfig(cfg.run)
				_ = dur
			}
			total := cfg.run.Clients * cfg.run.Commits
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*total), "us/commit")
		})
	}
}

func BenchmarkE9TemporalActions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buys, _ := experiments.TemporalActionRun(500)
		if buys == 0 {
			b.Fatal("temporal action never ran")
		}
	}
}

// BenchmarkAblationDecomposable measures the general constraint-graph
// machinery against the boolean fast path on the decomposable subclass
// (the paper's prototype scope, [Deng 94]).
func BenchmarkAblationDecomposable(b *testing.B) {
	for _, fast := range []bool{false, true} {
		name := "general"
		if fast {
			name = "fast"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.DecomposableRun(2000, fast); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionFutureProgression measures the future-operator monitor
// (the paper's Section-11 extension) on bounded vs unbounded obligations.
func BenchmarkExtensionFutureProgression(b *testing.B) {
	for _, bounded := range []bool{false, true} {
		name := "unbounded"
		if bounded {
			name = "bounded"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, _, _ := experiments.FutureMonitorRun(1000, bounded)
				if v == 0 {
					b.Fatal("no verdicts")
				}
			}
		})
	}
}

// persistBenchEngine builds a durable engine in dir with one temporal rule
// and n committed states, checkpointing (or not) so the WAL tail has the
// requested length.
func persistBenchEngine(b *testing.B, dir string, states int, checkpointAfter bool) {
	b.Helper()
	cfg := persistBenchConfig()
	eng, err := ptlactive.Restore(cfg, dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.AddTrigger("spike",
		`@tick and item("px") > 110 and previously item("px") <= 110`, nil); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < states; i++ {
		px := int64(100 + (i % 40) - 20)
		if err := eng.Exec(int64(i+1), map[string]ptlactive.Value{"px": ptlactive.Int(px)},
			ptlactive.NewEvent("tick")); err != nil {
			b.Fatal(err)
		}
	}
	if checkpointAfter {
		if err := eng.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
}

func persistBenchConfig() ptlactive.Config {
	return ptlactive.Config{
		Initial:    map[string]ptlactive.Value{"px": ptlactive.Int(100)},
		TrackItems: []string{"px"},
		Durability: ptlactive.DurabilityWAL,
		NoFsync:    true,
	}
}

// BenchmarkSnapshotSave measures serializing the full engine state — rule
// evaluator registers, aux relations, history window, pending firings —
// to a writer. Theorem 1's bounded evaluator state is why this stays
// small and flat as the committed history grows.
func BenchmarkSnapshotSave(b *testing.B) {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial:    map[string]ptlactive.Value{"px": ptlactive.Int(100)},
		TrackItems: []string{"px"},
	})
	if err := eng.AddTrigger("spike",
		`@tick and item("px") > 110 and previously item("px") <= 110`, nil); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		px := int64(100 + (i % 40) - 20)
		if err := eng.Exec(int64(i+1), map[string]ptlactive.Value{"px": ptlactive.Int(px)},
			ptlactive.NewEvent("tick")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.SaveSnapshot(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures Restore for two disk layouts of the same
// 1000-state run: everything in one snapshot (tail replay is empty) vs a
// snapshot-free log whose 1k-record tail replays through the sweep path.
func BenchmarkRecover(b *testing.B) {
	for _, tail := range []bool{false, true} {
		name := "snapshot-only"
		if tail {
			name = "wal-tail-1k"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			persistBenchEngine(b, dir, 1000, !tail)
			cfg := persistBenchConfig()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := ptlactive.Restore(cfg, dir)
				if err != nil {
					b.Fatal(err)
				}
				if tail && eng.Recovery().ReplayedRecords < 1000 {
					b.Fatalf("expected a ~1k-record tail, replayed %d", eng.Recovery().ReplayedRecords)
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
