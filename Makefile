GO ?= go

.PHONY: build test bench race vet verify tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the full pre-merge tier: static checks plus the whole suite
# under the race detector (the concurrent engine makes -race load-bearing,
# not optional).
verify: vet race

tables:
	$(GO) run ./cmd/benchtables
