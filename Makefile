GO ?= go

.PHONY: build test bench race vet fmtcheck vulncheck stress verify tables profile benchcheck bench-baselines bench-engine serve-smoke cluster-smoke replica-smoke retain-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# govulncheck is optional tooling; the gate runs it when installed and
# prints a notice otherwise (the module is stdlib-only, so the stdlib
# advisories are what it would scan).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed, skipping"; fi

# stress repeats the fault-isolation and failover suites under the race
# detector: WAL fault injection, degraded-mode seals, quarantine/revive,
# panic and timeout sandboxing, plus the replication chaos tests (torn
# streams, lease promotion). -count=3 reruns catch flaky interleavings in
# the timeout handshake, the parallel drain and the promotion handoff.
# The pmap property suite rides along: every engine state lives in a
# persistent map, so its model checks belong in the repeated race pass.
stress:
	$(GO) test -race -count=3 -run 'Fault|Degrad|Quarantine|Sandbox|Panic|Failpoint|Timeout|Budget|Chaos|Failover|Lease|Promot|Replica|PMap' ./internal/adb ./internal/persist ./internal/replica ./internal/pmap

# verify is the full pre-merge tier: static checks plus the whole suite
# under the race detector (the concurrent engine and the durability
# layer's crash tests make -race load-bearing, not optional), then the
# repeated fault-isolation stress pass. benchcheck is advisory by
# default (the baselines are wall-clock numbers from the machine of
# record); set BENCHCHECK_STRICT=1 to make a regression in the server
# wire-path table (E13) fail the tier.
verify: vet fmtcheck vulncheck race stress serve-smoke cluster-smoke replica-smoke retain-smoke
ifeq ($(BENCHCHECK_STRICT),1)
	$(MAKE) benchcheck
else
	-$(MAKE) benchcheck
endif

# serve-smoke boots adbserverd on a random port, drives a scripted client
# session through adbsh -connect (rules, commits, firing subscription),
# then SIGTERMs the server and asserts a clean graceful drain (exit 0).
serve-smoke:
	sh scripts/serve_smoke.sh

# replica-smoke boots a durable primary holding the flock lease and a
# follower replicating from it, checks byte-identical wal catch-up and
# the not_primary write refusal, then SIGKILLs the primary and asserts
# the follower promotes itself and serves reads and writes.
replica-smoke:
	sh scripts/replica_smoke.sh

# retain-smoke boots adbserverd with an aggressive retention policy,
# drives enough commits through adbsh to rotate segments and GC the log
# head, asserts the storage query reports a bounded hot set and spilled
# history, then restarts the server and checks recovery still answers
# in-window and cold reads.
retain-smoke:
	sh scripts/retain_smoke.sh

# cluster-smoke boots adbrouterd over two durable in-process shards,
# drives a scripted session with a cross-shard relay rule through
# adbsh -connect, asserts that a commit spanning shards is refused,
# then SIGTERMs the router and asserts a clean graceful drain (exit 0).
cluster-smoke:
	sh scripts/cluster_smoke.sh

tables:
	$(GO) run ./cmd/benchtables

# profile captures pprof CPU and heap profiles of the scheduling and
# durability experiments; inspect with `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/benchtables -only E10,E12 -cpuprofile cpu.prof -memprofile mem.prof
	@echo "wrote cpu.prof and mem.prof (go tool pprof cpu.prof)"

# benchcheck re-runs the experiments behind the committed benchmark
# baselines and reports any time column more than 20% over baseline.
benchcheck:
	$(GO) run ./cmd/benchcheck BENCH_sched.json BENCH_persist.json BENCH_server.json BENCH_cluster.json BENCH_engine.json BENCH_retain.json

# bench-baselines regenerates the committed baselines on this machine.
bench-baselines:
	$(GO) run ./cmd/benchtables -only E12 -json BENCH_sched.json >/dev/null
	$(GO) run ./cmd/benchtables -only E10 -json BENCH_persist.json >/dev/null
	$(GO) run ./cmd/benchtables -only E13 -json BENCH_server.json >/dev/null
	$(GO) run ./cmd/benchtables -only E14 -json BENCH_cluster.json >/dev/null
	$(GO) run ./cmd/benchtables -only E16 -json BENCH_engine.json >/dev/null
	$(GO) run ./cmd/benchtables -only E17 -json BENCH_retain.json >/dev/null

# bench-engine regenerates just the commit-scaling baseline (E16, ~1min:
# the 1M-item rows dominate).
bench-engine:
	$(GO) run ./cmd/benchtables -only E16 -json BENCH_engine.json
