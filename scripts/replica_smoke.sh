#!/bin/sh
# replica_smoke.sh — end-to-end smoke test of replication and failover:
# build adbserverd and adbsh, boot a durable primary holding the lease
# and a follower replicating from it, commit a workload on the primary,
# wait for the follower to catch up byte-for-byte (same LSN, same wal
# bytes), then SIGKILL the primary — the kernel releases the flock — and
# assert the follower promotes itself, serves the replicated data, and
# accepts a write of its own.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
primary_pid=""
follower_pid=""
cleanup() {
    [ -n "$primary_pid" ] && kill "$primary_pid" 2>/dev/null || true
    [ -n "$follower_pid" ] && kill "$follower_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/adbserverd" ./cmd/adbserverd
"$GO" build -o "$tmp/adbsh" ./cmd/adbsh

wait_port() { # file label logfile
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "replica-smoke: $2 never published its port" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
    cat "$1"
}

role_field() { # addr field
    printf 'role\n' | "$tmp/adbsh" -connect "$1" |
        tr ' ' '\n' | sed -n "s/^$2=//p"
}

"$tmp/adbserverd" -addr 127.0.0.1:0 -port-file "$tmp/pport" \
    -data "$tmp/pdata" -lease "$tmp/lease" -lease-poll 50ms \
    2>"$tmp/primary.log" &
primary_pid=$!
paddr="$(wait_port "$tmp/pport" primary "$tmp/primary.log")"

"$tmp/adbserverd" -addr 127.0.0.1:0 -port-file "$tmp/fport" \
    -data "$tmp/fdata" -replica-of "$paddr" \
    -lease "$tmp/lease" -lease-poll 50ms \
    2>"$tmp/follower.log" &
follower_pid=$!
faddr="$(wait_port "$tmp/fport" follower "$tmp/follower.log")"

# Workload on the primary: a rule plus commits that fire it.
cat > "$tmp/session" << 'EOF'
commit 1 a=3
trigger hot :: item("a") > 5
commit 2 a=9
commit 3 a=7
commit 4 b=1
EOF
"$tmp/adbsh" -connect "$paddr" "$tmp/session"

# The follower must converge to the primary's LSN, and being WAL
# shipping — not logical replication — the logs must be byte-identical.
plsn="$(role_field "$paddr" lsn)"
i=0
while [ "$(role_field "$faddr" lsn)" != "$plsn" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "replica-smoke: follower never reached primary LSN $plsn" >&2
        cat "$tmp/follower.log" >&2
        exit 1
    fi
    sleep 0.1
done
# The WAL is segmented; compare the concatenation in ordinal order
# (neither side runs retention here, so both hold the full log).
cat "$tmp/pdata"/wal.0* > "$tmp/pwal"
cat "$tmp/fdata"/wal.0* > "$tmp/fwal"
cmp "$tmp/pwal" "$tmp/fwal" || {
    echo "replica-smoke: follower wal differs from primary wal" >&2
    exit 1
}
[ "$(role_field "$faddr" role)" = "follower" ] || {
    echo "replica-smoke: replica does not report role=follower" >&2
    exit 1
}

# A write against the follower must be refused with the primary hint.
if out="$(printf 'commit 9 a=1\n' | "$tmp/adbsh" -connect "$faddr" 2>&1)"; then
    echo "replica-smoke: follower accepted a write" >&2
    exit 1
fi
case "$out" in
*"not the primary"*) ;;
*) echo "replica-smoke: refusal lacks not_primary: $out" >&2; exit 1 ;;
esac

# Failover: SIGKILL the primary so the kernel releases the flock, then
# wait for the follower's lease poll to win it and promote.
kill -9 "$primary_pid"
wait "$primary_pid" 2>/dev/null || true
primary_pid=""
i=0
while [ "$(role_field "$faddr" role)" != "primary" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "replica-smoke: follower never promoted" >&2
        cat "$tmp/follower.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ "$(role_field "$faddr" epoch)" = "2" ] || {
    echo "replica-smoke: promoted epoch is not 2" >&2
    exit 1
}

# The promoted node serves the replicated state and takes writes; the
# replayed rule still fires on them.
out="$(printf 'show db\nshow firings\ncommit 10 a=8\nshow firings\n' | "$tmp/adbsh" -connect "$faddr")"
echo "$out"
case "$out" in
*"a=7"*) ;;
*) echo "replica-smoke: promoted node lost replicated state" >&2; exit 1 ;;
esac
case "$out" in
*"hot at 10"*) ;;
*) echo "replica-smoke: promoted node did not fire on a new commit" >&2; exit 1 ;;
esac

# Graceful drain of the promoted node.
kill -TERM "$follower_pid"
rc=0
wait "$follower_pid" || rc=$?
follower_pid=""
if [ "$rc" -ne 0 ]; then
    echo "replica-smoke: promoted node exited $rc on SIGTERM" >&2
    cat "$tmp/follower.log" >&2
    exit 1
fi
echo "replica-smoke: ok"
