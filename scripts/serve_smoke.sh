#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the network service layer:
# build adbserverd and adbsh, boot the server on a random port, run a
# scripted remote session (rules, commits, firing subscription, queries),
# then SIGTERM the server and assert a clean graceful drain (exit 0).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/adbserverd" ./cmd/adbserverd
"$GO" build -o "$tmp/adbsh" ./cmd/adbsh

"$tmp/adbserverd" -addr 127.0.0.1:0 -port-file "$tmp/port" 2>"$tmp/server.log" &
server_pid=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$tmp/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: server never published its port" >&2
        cat "$tmp/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$tmp/port")"

cat > "$tmp/session" << 'EOF'
commit 1 a=3
trigger hot :: item("a") > 5
constraint nonneg :: item("a") >= 0
commit 2 a=9
commit 3 a=-1
show db
show rules
show firings
health
follow 1
EOF

out="$("$tmp/adbsh" -connect "$addr" "$tmp/session")"
echo "$out"
case "$out" in
*"ABORT at 3: nonneg"*) ;;
*) echo "serve-smoke: constraint abort not reported" >&2; exit 1 ;;
esac
case "$out" in
*"hot at 2"*) ;;
*) echo "serve-smoke: firing missing from show firings" >&2; exit 1 ;;
esac
case "$out" in
*"FIRE hot at 2"*) ;;
*) echo "serve-smoke: subscription did not deliver the firing" >&2; exit 1 ;;
esac

# Graceful drain: SIGTERM must yield exit 0 and the drain log line.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: server exited $rc on SIGTERM" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
grep -q "clean drain" "$tmp/server.log" || {
    echo "serve-smoke: no clean-drain log line" >&2
    cat "$tmp/server.log" >&2
    exit 1
}
echo "serve-smoke: ok"
