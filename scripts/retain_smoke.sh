#!/bin/sh
# retain_smoke.sh — end-to-end smoke test of the storage lifecycle:
# build adbserverd and adbsh, boot a durable server with an aggressive
# retention policy (tiny WAL segments, short checkpoint cadence, 1-deep
# snapshot chain, spilled 8-tick history window), drive enough commits
# to rotate segments and GC the log head, assert the storage query
# reports a bounded hot set and spilled history, then SIGKILL the server
# and check crash recovery still serves the data and reports sane
# storage, ending with a graceful drain.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/adbserverd" ./cmd/adbserverd
"$GO" build -o "$tmp/adbsh" ./cmd/adbsh

# start_server runs in the main shell (not a command substitution) so
# server_pid survives; the bound address lands in $tmp/port.
start_server() { # logfile
    rm -f "$tmp/port"
    "$tmp/adbserverd" -addr 127.0.0.1:0 -port-file "$tmp/port" \
        -data "$tmp/data" -track a \
        -snapshot-every 8 -wal-segment-bytes 1024 -keep-snapshots 1 \
        -history-window 8 -spill-history \
        >"$1" 2>&1 &
    server_pid=$!
    i=0
    while [ ! -s "$tmp/port" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "retain-smoke: server never published its port" >&2
            cat "$1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

storage_field() { # addr field
    printf 'storage\n' | "$tmp/adbsh" -connect "$1" |
        tr ' ' '\n' | sed -n "s/^$2=//p"
}

start_server "$tmp/server.log"
addr="$(cat "$tmp/port")"

# 60 commits: enough to checkpoint ~7 times, rotate past 1 KiB segments
# repeatedly, and push the 8-tick history window well past the start.
ts=1
while [ "$ts" -le 60 ]; do
    printf 'commit %d a=%d\n' "$ts" "$ts"
    ts=$((ts + 1))
done > "$tmp/session"
"$tmp/adbsh" -connect "$addr" "$tmp/session" > /dev/null

out="$(printf 'storage\n' | "$tmp/adbsh" -connect "$addr")"
echo "$out"

# GC must have truncated the log head: the oldest retained LSN is past 1.
head_lsn="$(storage_field "$addr" head_lsn)"
if [ "${head_lsn:-0}" -le 1 ]; then
    echo "retain-smoke: GC never truncated the wal head (head_lsn=$head_lsn)" >&2
    exit 1
fi

# The hot set is bounded: a handful of live segments, 1-deep chain.
segs="$(storage_field "$addr" segments)"
if [ "${segs:-99}" -gt 6 ]; then
    echo "retain-smoke: $segs live segments; rotation/GC not bounding the log" >&2
    exit 1
fi
snaps="$(storage_field "$addr" snapshots)"
if [ "${snaps:-99}" -gt 1 ]; then
    echo "retain-smoke: snapshot chain depth $snaps exceeds keep-snapshots=1" >&2
    exit 1
fi
ondisk="$(ls "$tmp/data"/wal.0* | wc -l)"
if [ "$ondisk" != "$segs" ]; then
    echo "retain-smoke: $ondisk wal segments on disk, storage reports $segs" >&2
    exit 1
fi

# History is windowed and spilled: floor advanced, cold tier has rows.
case "$out" in
*"window=8"*"policy=spill"*) ;;
*) echo "retain-smoke: storage does not report the spill window" >&2; exit 1 ;;
esac
floor="$(storage_field "$addr" floor)"
if [ "${floor:-0}" -le 0 ]; then
    echo "retain-smoke: history floor never advanced (floor=$floor)" >&2
    exit 1
fi
rows="$(storage_field "$addr" tier_rows)"
if [ "${rows:-0}" -le 0 ]; then
    echo "retain-smoke: pruned history was not spilled (tier_rows=$rows)" >&2
    exit 1
fi

# SIGKILL, then restart over the same directory: every acked commit was
# fsynced, so crash recovery replays the bounded hot set and the server
# still answers with the last committed value.
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
start_server "$tmp/server2.log"
addr="$(cat "$tmp/port")"
out="$(printf 'show db\ncommit 61 a=61\nstorage\n' | "$tmp/adbsh" -connect "$addr")"
echo "$out"
case "$out" in
*"a=60"*) ;;
*) echo "retain-smoke: recovered server lost the last committed value" >&2; exit 1 ;;
esac
case "$out" in
*"window=8"*"policy=spill"*) ;;
*) echo "retain-smoke: recovered server lost the retention policy" >&2; exit 1 ;;
esac
rows2="$(storage_field "$addr" tier_rows)"
if [ "${rows2:-0}" -lt "$rows" ]; then
    echo "retain-smoke: cold tier shrank across restart ($rows -> $rows2)" >&2
    exit 1
fi

kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
if [ "$rc" -ne 0 ]; then
    echo "retain-smoke: recovered server exited $rc on SIGTERM" >&2
    cat "$tmp/server2.log" >&2
    exit 1
fi
echo "retain-smoke: ok"
