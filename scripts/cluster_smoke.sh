#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the sharded cluster: build
# adbrouterd and adbsh, boot a router over two in-process shards on a
# random port, run a scripted remote session through the ordinary shell
# (single-shard commits, a cross-shard relay rule, the merged firing
# subscription), assert that an actually cross-shard commit is refused,
# then SIGTERM the router and assert a clean graceful drain (exit 0).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
router_pid=""
cleanup() {
    [ -n "$router_pid" ] && kill "$router_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/adbrouterd" ./cmd/adbrouterd
"$GO" build -o "$tmp/adbsh" ./cmd/adbsh

"$tmp/adbrouterd" -addr 127.0.0.1:0 -port-file "$tmp/port" -local 2 \
    -data "$tmp/data" 2>"$tmp/router.log" &
router_pid=$!

# Wait for the router to publish its bound address.
i=0
while [ ! -s "$tmp/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "cluster-smoke: router never published its port" >&2
        cat "$tmp/router.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$tmp/port")"

# Under FNV-1a mod 2, item "m0" hashes to shard 0 and event symbol
# "sig1" to shard 1 — so "alarm" is a genuinely cross-shard rule: it
# homes on shard 0 and needs a relay trigger on shard 1. The emit
# routes to shard 1, the relay forwards the occurrence home, and the
# merged stream delivers hot@2 then hot@3 + alarm@3.
cat > "$tmp/session" << 'EOF'
commit 1 m0=3
trigger hot :: item("m0") > 5
trigger alarm :: @sig1 and item("m0") > 0
commit 2 m0=9
emit 3 @sig1
show rules
follow 3
EOF

out="$("$tmp/adbsh" -connect "$addr" "$tmp/session")"
echo "$out"
case "$out" in
*"FIRE hot at 2"*) ;;
*) echo "cluster-smoke: single-shard firing missing" >&2; exit 1 ;;
esac
case "$out" in
*"FIRE alarm at"*) ;;
*) echo "cluster-smoke: relayed cross-shard firing missing" >&2; exit 1 ;;
esac
case "$out" in
*"__relay"*) echo "cluster-smoke: relay trigger leaked into show rules" >&2; exit 1 ;;
*) ;;
esac

# A commit touching items on both shards must be refused, not half-applied.
echo "commit 9 m0=1 m1=1" > "$tmp/crossshard"
rc=0
err="$("$tmp/adbsh" -connect "$addr" "$tmp/crossshard" 2>&1)" || rc=$?
if [ "$rc" -eq 0 ]; then
    echo "cluster-smoke: cross-shard commit was accepted" >&2
    exit 1
fi
case "$err" in
*"spans multiple shards"*) ;;
*) echo "cluster-smoke: refusal lacked the cross-shard error: $err" >&2; exit 1 ;;
esac

# Graceful drain: SIGTERM must yield exit 0 and the drain log line.
kill -TERM "$router_pid"
rc=0
wait "$router_pid" || rc=$?
router_pid=""
if [ "$rc" -ne 0 ]; then
    echo "cluster-smoke: router exited $rc on SIGTERM" >&2
    cat "$tmp/router.log" >&2
    exit 1
fi
grep -q "clean drain" "$tmp/router.log" || {
    echo "cluster-smoke: no clean-drain log line" >&2
    cat "$tmp/router.log" >&2
    exit 1
}
echo "cluster-smoke: ok"
