// Package ptlactive is a reproduction of Sistla & Wolfson, "Temporal
// Conditions and Integrity Constraints in Active Database Systems"
// (SIGMOD 1995): an active-database rule system whose rule conditions are
// Past Temporal Logic (PTL) formulas, evaluated by the paper's incremental
// algorithm.
//
// The package re-exports the public surface of the internal modules:
//
//   - the PTL language: Parse, Formula, the condition checker;
//   - the incremental condition evaluator (Evaluator) for embedding into
//     other systems;
//   - the active database engine (Engine): triggers, temporal integrity
//     constraints, transactions, the executed predicate, temporal actions —
//     with a parallel temporal component (Config.Workers sizes the worker
//     pool; firings are identical at every setting, and reader accessors
//     are safe from concurrent goroutines);
//   - aggregate rule rewriting (RewriteAggregates, InstallIndexed);
//   - the valid-time model (ValidStore, ValidMonitor, online/offline
//     constraint satisfaction).
//
// Quickstart (the paper's running example — IBM doubled within 10 time
// units):
//
//	eng := ptlactive.NewEngine(ptlactive.Config{
//	    Initial: map[string]ptlactive.Value{"ibm": ptlactive.Float(10)},
//	})
//	_ = eng.AddTrigger("doubled",
//	    `[t <- time] [x <- item("ibm")]
//	         previously (item("ibm") <= 0.5 * x and time >= t - 10)`,
//	    func(ctx *ptlactive.ActionContext) error {
//	        fmt.Println("IBM doubled at", ctx.FiredAt)
//	        return nil
//	    })
//	_ = eng.Exec(8, map[string]ptlactive.Value{"ibm": ptlactive.Float(25)})
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// mapping from the paper's sections to modules.
package ptlactive

import (
	"io"

	"ptlactive/internal/adb"
	"ptlactive/internal/agg"
	"ptlactive/internal/core"
	"ptlactive/internal/event"
	"ptlactive/internal/future"
	"ptlactive/internal/histio"
	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/persist"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/relation"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
	"ptlactive/internal/vtime"
)

// ---- Values ----

// Value is the dynamic value type of database items, event parameters and
// rule bindings.
type Value = value.Value

// Int builds an integer value.
func Int(i int64) Value { return value.NewInt(i) }

// Float builds a float value.
func Float(f float64) Value { return value.NewFloat(f) }

// Str builds a string value.
func Str(s string) Value { return value.NewString(s) }

// Bool builds a boolean value.
func Bool(b bool) Value { return value.NewBool(b) }

// Relation builds a relation value from rows.
func Relation(rows [][]Value) Value { return value.NewRelation(rows) }

// Tuple builds a tuple value.
func Tuple(elems ...Value) Value { return value.NewTuple(elems...) }

// ---- Events ----

// Event is a parameterized event occurrence.
type Event = event.Event

// NewEvent constructs an event occurrence.
func NewEvent(name string, args ...Value) Event { return event.New(name, args...) }

// EventSet is the set of events occurring at one instant.
type EventSet = event.Set

// NewEventSet builds an event set (duplicates dropped).
func NewEventSet(events ...Event) *EventSet { return event.NewSet(events...) }

// Standard event symbols emitted by the engine.
const (
	TransactionBegin  = event.TransactionBegin
	TransactionCommit = event.TransactionCommit
	TransactionAbort  = event.TransactionAbort
	AttemptsToCommit  = event.AttemptsToCommit
	UpdateItem        = event.UpdateItem
)

// ---- The language ----

// Formula is a PTL condition.
type Formula = ptl.Formula

// ParseCondition parses a PTL condition in concrete syntax; see the
// grammar in internal/ptl.
func ParseCondition(src string) (Formula, error) { return ptl.Parse(src) }

// CheckCondition validates a condition against a query registry and
// returns its static information (free variables, referenced events,
// normalized form).
func CheckCondition(f Formula, reg *Registry) (*ConditionInfo, error) {
	return ptl.Check(f, reg)
}

// ConditionInfo is the result of checking a condition.
type ConditionInfo = ptl.Info

// Decomposable reports whether the condition falls in the subclass the
// paper's Sybase prototype implemented.
func Decomposable(f Formula) bool { return ptl.Decomposable(f) }

// ---- Queries ----

// Registry maps PTL function symbols to query implementations.
type Registry = query.Registry

// SystemState is one instant of a system history: database state, event
// set and timestamp.
type SystemState = history.SystemState

// History is a sequence of system states.
type History = history.History

// DBState is an immutable database state.
type DBState = history.DBState

// NewRegistry returns a registry with the built-in symbols (item, time).
func NewRegistry() *Registry { return query.NewRegistry() }

// Schema describes the columns of a relation-valued database item, used
// when registering RETRIEVE queries and relational helpers.
type Schema = relation.Schema

// Column is one attribute of a Schema.
type Column = relation.Column

// NewSchema builds a schema; column names must be unique.
func NewSchema(cols ...Column) (*Schema, error) { return relation.NewSchema(cols...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(cols ...Column) *Schema { return relation.MustSchema(cols...) }

// ---- Incremental evaluation (the paper's Section-5 algorithm) ----

// Evaluator incrementally evaluates one condition over a stream of system
// states; embed it when the full Engine is not needed.
type Evaluator = core.Evaluator

// EvalResult is the outcome of one evaluation step.
type EvalResult = core.Result

// Binding is one satisfying assignment of a condition's parameters.
type Binding = core.Binding

// CompileCondition checks a condition and builds its incremental
// evaluator. log may be nil.
func CompileCondition(f Formula, reg *Registry, log ExecLog) (*Evaluator, error) {
	return core.Compile(f, reg, log)
}

// ExecLog supplies recorded rule executions for the executed predicate.
type ExecLog = ptl.ExecLog

// NaiveEvaluator is the direct (whole-history) reference semantics; it is
// exported for differential testing and benchmarking against the
// incremental algorithm.
type NaiveEvaluator = naive.Evaluator

// NewNaiveEvaluator builds a reference evaluator over a history.
func NewNaiveEvaluator(reg *Registry, h *History, log ExecLog) *NaiveEvaluator {
	return naive.New(reg, h, log)
}

// ---- The active database engine ----

// Engine is the active database: items, rules, transactions and the
// temporal component.
type Engine = adb.Engine

// Config configures an Engine.
type Config = adb.Config

// Txn is an open transaction.
type Txn = adb.Txn

// ActionContext is passed to trigger actions.
type ActionContext = adb.ActionContext

// Action is a trigger's action part.
type Action = adb.Action

// Firing records one rule firing.
type Firing = adb.Firing

// Scheduling selects when trigger conditions are evaluated (Section 8).
type Scheduling = adb.Scheduling

// Scheduling modes.
const (
	Eager    = adb.Eager
	Relevant = adb.Relevant
	Manual   = adb.Manual
)

// RuleOption configures a rule at registration.
type RuleOption = adb.RuleOption

// WithScheduling sets a trigger's scheduling mode.
func WithScheduling(s Scheduling) RuleOption { return adb.WithScheduling(s) }

// ErrConstraintViolation reports a transaction aborted by a temporal
// integrity constraint; use errors.Is.
var ErrConstraintViolation = adb.ErrConstraintViolation

// ConstraintError carries the violated constraint's name.
type ConstraintError = adb.ConstraintError

// NewEngine creates an engine.
func NewEngine(cfg Config) *Engine { return adb.NewEngine(cfg) }

// ---- Fault isolation, resource governance, degradation ----

// Sentinel errors of the fault-isolation layer; match with errors.Is.
var (
	// ErrRuleQuarantined reports a rule whose action the per-rule circuit
	// breaker suppressed (Config.MaxRuleFailures).
	ErrRuleQuarantined = adb.ErrRuleQuarantined
	// ErrActionPanic reports a user action panic recovered by the sandbox.
	ErrActionPanic = adb.ErrActionPanic
	// ErrDegraded reports an engine sealed read-only after a durability
	// fault or broken invariant; see Engine.Degraded.
	ErrDegraded = adb.ErrDegraded
	// ErrBudgetExceeded reports a sweep exceeding Config.SweepBudget.
	ErrBudgetExceeded = adb.ErrBudgetExceeded
	// ErrActionTimeout reports an action exceeding Config.ActionTimeout.
	ErrActionTimeout = adb.ErrActionTimeout
	// ErrInternal reports a broken engine invariant.
	ErrInternal = adb.ErrInternal
)

// ActionPanicError carries a recovered action panic (value and stack).
type ActionPanicError = adb.ActionPanicError

// QuarantineError reports a firing whose action was suppressed by the
// circuit breaker.
type QuarantineError = adb.QuarantineError

// DegradedError seals an engine read-only and carries the cause.
type DegradedError = adb.DegradedError

// BudgetError attributes an exceeded sweep budget to a rule.
type BudgetError = adb.BudgetError

// TimeoutError attributes an exceeded action deadline to a rule.
type TimeoutError = adb.TimeoutError

// InternalError reports a failure on a must-not-fail engine path.
type InternalError = adb.InternalError

// RuleHealth is the inspection view of a rule's failure record; see
// Engine.RuleHealth, Engine.QuarantinedRules and Engine.ReviveRule.
type RuleHealth = adb.RuleHealth

// RuleFault is one isolated action fault, delivered to Config.OnRuleFault.
type RuleFault = adb.RuleFault

// ---- Durability: snapshots, write-ahead log, crash recovery ----

// Durability selects the engine's durability mode (see Config).
type Durability = adb.Durability

// Durability modes.
const (
	// DurabilityOff keeps all state in memory (the default).
	DurabilityOff = adb.DurabilityOff
	// DurabilityWAL logs every committed operation to a write-ahead log.
	DurabilityWAL = adb.DurabilityWAL
	// DurabilitySnapshot additionally writes a periodic snapshot and
	// resets the log, bounding recovery time.
	DurabilitySnapshot = adb.DurabilitySnapshot
)

// RecoveryInfo reports what Restore found and replayed.
type RecoveryInfo = adb.RecoveryInfo

// Restore opens a durable engine backed by dir, recovering from the
// newest valid snapshot plus the write-ahead log tail. A fresh directory
// yields a new engine whose operations are logged from the start.
func Restore(cfg Config, dir string) (*Engine, error) { return adb.Restore(cfg, dir) }

// Retention is the storage-lifecycle policy of a durable engine: WAL
// segment rotation, snapshot-chain length, and the tiered retention of
// temporal history (Config.Retention). The zero value retains everything.
type Retention = adb.Retention

// StorageStats is an engine's storage footprint (Engine.Storage): WAL
// segments and snapshot chain plus the history tiers.
type StorageStats = adb.StorageStats

// Storage-lifecycle sentinels; match with errors.Is.
var (
	// ErrHistoryTruncated reports a point-in-time read older than the
	// retained history window of an engine that drops (rather than
	// spills) old history; errors.As for *HistoryTruncatedError.
	ErrHistoryTruncated = adb.ErrHistoryTruncated
	// ErrTruncatedHead reports a WAL read below the retained head — the
	// segments covering it were garbage-collected behind a snapshot.
	ErrTruncatedHead = persist.ErrTruncatedHead
)

// HistoryTruncatedError carries the requested timestamp and the oldest
// retained one.
type HistoryTruncatedError = adb.HistoryTruncatedError

// ---- Temporal aggregates by rule rewriting (Section 6.1.1) ----

// RewriteAggregates registers a trigger whose condition's aggregates are
// processed by the paper's rule rewriting (fresh items plus reset and
// accumulate rules) instead of direct evaluation.
func RewriteAggregates(eng *Engine, name, condition string, action Action, opts ...RuleOption) error {
	return agg.Rewrite(eng, name, condition, action, opts...)
}

// IndexedAggregate describes an indexed aggregate family F(x) for
// aggregates with a free variable.
type IndexedAggregate = agg.IndexedSpec

// InstallIndexedAggregate installs the maintenance rules for an indexed
// aggregate family, consumed through membership conditions.
func InstallIndexedAggregate(eng *Engine, spec IndexedAggregate) error {
	return agg.InstallIndexed(eng, spec)
}

// Aggregate function names.
const (
	AggSum   = ptl.AggSum
	AggCount = ptl.AggCount
	AggAvg   = ptl.AggAvg
	AggMin   = ptl.AggMin
	AggMax   = ptl.AggMax
)

// ---- Valid time (Section 9) ----

// ValidStore is the valid-time history store: retroactive updates,
// committed histories, collapsed histories.
type ValidStore = vtime.Store

// NewValidStore creates a valid-time store with maximum delay delta
// (UnlimitedDelay disables the bound; definite monitoring then becomes
// unavailable).
func NewValidStore(initial DBState, start, delta int64) *ValidStore {
	return vtime.NewStore(initial, start, delta)
}

// UnlimitedDelay disables the maximum-delay bound.
const UnlimitedDelay = vtime.Unlimited

// ValidMonitor evaluates a condition over a valid-time store.
type ValidMonitor = vtime.Monitor

// Valid-time monitoring modes.
const (
	Tentative = vtime.Tentative
	Definite  = vtime.Definite
)

// NewValidMonitor compiles a condition for tentative or definite
// monitoring over a valid-time store.
func NewValidMonitor(s *ValidStore, reg *Registry, condition Formula, mode vtime.Mode) (*ValidMonitor, error) {
	return vtime.NewMonitor(s, reg, condition, mode)
}

// OnlineSatisfied reports online satisfaction of a temporal integrity
// constraint over a valid-time store (Section 9.3).
func OnlineSatisfied(s *ValidStore, reg *Registry, c Formula) (bool, error) {
	return vtime.OnlineSatisfied(s, reg, c)
}

// OfflineSatisfied reports offline satisfaction (Section 9.3).
func OfflineSatisfied(s *ValidStore, reg *Registry, c Formula) (bool, error) {
	return vtime.OfflineSatisfied(s, reg, c)
}

// ValidViolationError reports a transaction aborted by the Section-9.3
// valid-time enforcement procedure.
type ValidViolationError = vtime.ViolationError

// ---- Future temporal logic (the paper's Section-11 future work) ----

// FutureMonitor decides closed future-logic conditions (until, nexttime,
// eventually, always) over finite traces by formula progression, emitting
// a verdict for every trace index the instant it is determined.
type FutureMonitor = future.Monitor

// FutureResult is one resolved verdict of a FutureMonitor.
type FutureResult = future.Result

// CompileFuture parses and compiles a future condition for monitoring.
func CompileFuture(src string, reg *Registry, log ExecLog) (*FutureMonitor, error) {
	return future.Compile(src, reg, log)
}

// NewFutureMonitor compiles a parsed future condition.
func NewFutureMonitor(f Formula, reg *Registry, log ExecLog) (*FutureMonitor, error) {
	return future.NewMonitor(f, reg, log)
}

// WriteHistory serializes a history as lossless JSON lines (one state per
// line, kind-tagged values); ReadHistory parses it back.
func WriteHistory(w io.Writer, h *History) error { return histio.Write(w, h) }

// ReadHistory parses a history written by WriteHistory.
func ReadHistory(r io.Reader) (*History, error) { return histio.Read(r) }

// NewDB builds an initial database state from an item map.
func NewDB(items map[string]Value) DBState { return history.NewDB(items) }

// EmptyDB returns the empty database state.
func EmptyDB() DBState { return history.EmptyDB() }

// ---- Network service layer (internal/server, client) ----

// Sentinel errors of the network service layer; match with errors.Is.
// They cross the wire: a client observes the same sentinels the server
// raised, alongside the engine taxonomy above (ErrDegraded,
// ErrConstraintViolation, ...).
var (
	// ErrSessionClosed reports an operation on a server session that has
	// ended — client bye, server drain, or connection failure.
	ErrSessionClosed = wire.ErrSessionClosed
	// ErrSubscriberLagged reports a firing subscriber whose bounded queue
	// overflowed under the disconnect overflow policy.
	ErrSubscriberLagged = wire.ErrSubscriberLagged
	// ErrVersionMismatch reports a connection whose protocol name or
	// version the peer does not speak.
	ErrVersionMismatch = wire.ErrVersionMismatch
	// ErrNotPrimary reports a write sent to a replica that is not the
	// primary; errors.As for *NotPrimaryError to get the redirect hint.
	ErrNotPrimary = wire.ErrNotPrimary
	// ErrWalTruncated reports a replication resume position that fell
	// behind the primary's retained WAL head and could not be snapshot-
	// bootstrapped.
	ErrWalTruncated = wire.ErrWalTruncated
)

// RemoteError is the client-side form of a server error frame; its Unwrap
// maps the wire code back onto the matching sentinel, so errors.Is works
// across the network.
type RemoteError = wire.RemoteError

// NotPrimaryError is the refusal a follower replica answers writes with;
// Leader, when non-empty, is the address the client should redial.
type NotPrimaryError = wire.NotPrimaryError
