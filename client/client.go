// Package client is the Go client for the active-database server: it
// dials a server, performs the versioned hello handshake, and exposes the
// engine's operations — batched transactions, event emission, rule
// registration and revival, state/firing/health queries, and asynchronous
// firing subscriptions — over one multiplexed connection.
//
// All methods are safe for concurrent use: every outbound frame is
// serialized behind a single write mutex, so concurrent transactions from
// many goroutines never interleave frame bytes on the shared connection.
// Requests carry ids; a single read loop routes responses back to their
// callers and delivers pushed firing, gap and bye frames to the
// subscription channel. Server errors come back as the same taxonomy the
// engine raises in-process: errors.Is against ptlactive's sentinels
// (ErrDegraded, ErrConstraintViolation, ErrRuleQuarantined, ...) and
// errors.As against *adb.ConstraintError work across the network.
//
// The handshake negotiates a frame codec: by default the client offers
// the binary codec with JSON as fallback, and the server picks binary
// when it speaks it (Options.Codecs pins the offer; legacy servers
// ignore it and the session stays JSON). Transactions can also be
// pipelined — Txn.Go sends a commit without waiting and returns a
// Pending whose Wait collects the outcome, so many commits share the
// wire concurrently and the per-commit cost approaches the server's
// processing time instead of a full round trip each.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/histio"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// StreamEvent is one delivery on a subscription: either a firing (Gap ==
// 0) or a gap marker counting firings the server dropped under the
// drop-with-gap overflow policy.
type StreamEvent struct {
	Firing adb.Firing
	// Seq is the firing's absolute index in the server's firing log.
	Seq int
	// Gap, when nonzero, means this event is a gap marker: Gap firings
	// were dropped before the next delivered one.
	Gap int
}

// Subscription is a live firing stream.
type Subscription struct {
	// C delivers firings and gap markers in server order. It closes when
	// the connection ends — after the server's graceful drain has flushed
	// the queued backlog, or abruptly on failure.
	C <-chan StreamEvent
	c chan StreamEvent
}

// Options configures Dial and New.
type Options struct {
	// Codecs is the frame-codec offer sent in the hello, in preference
	// order; the server picks the best one it speaks. Nil offers binary
	// with JSON fallback (wire.DefaultCodecs). To force the debuggable
	// JSON framing, pass []string{"json"}.
	Codecs []string
	// Retry, when set, makes DialOptions retry failed dials and
	// handshakes with capped exponential backoff plus jitter; nil keeps
	// the historical single-attempt behavior. A version mismatch is never
	// retried — waiting will not fix a protocol disagreement.
	Retry *RetryPolicy
}

// RetryPolicy shapes dial retries: up to Attempts tries total, sleeping a
// capped exponential backoff with jitter between them. Clients of a
// replicated service use it to ride out the window where the old primary
// is dead and the new one has not finished promoting.
type RetryPolicy struct {
	// Attempts is the total number of dial attempts (<= 1 means one).
	Attempts int
	// Base is the first backoff step (default 100ms); each retry doubles
	// it up to Max (default 3s). The actual sleep is half the step plus a
	// random half, so a reconnecting fleet does not dial in lockstep.
	Base time.Duration
	Max  time.Duration
}

// DefaultRetry is a sensible reconnect policy: 6 attempts over roughly
// six seconds of backoff.
func DefaultRetry() *RetryPolicy {
	return &RetryPolicy{Attempts: 6, Base: 100 * time.Millisecond, Max: 3 * time.Second}
}

// delay returns the sleep before retry k (0-based, after the first
// failure).
func (p *RetryPolicy) delay(k int) time.Duration {
	base, max := p.Base, p.Max
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 3 * time.Second
	}
	if k > 20 {
		k = 20 // the shift below would overflow; far past Max anyway
	}
	d := base << k
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Client is one session with an active-database server.
type Client struct {
	conn  net.Conn
	codec wire.Codec
	// br buffers inbound frames — a burst of pipelined responses or a
	// batched firing backlog drains in one syscall. Only the read loop
	// (and the handshake, before it starts) touches it.
	br *bufio.Reader

	// wmu serializes every frame write on the shared connection —
	// concurrent commits, queries and Close's bye frame. Without it two
	// goroutines race the frame writer's shared buffer and interleave
	// length-prefixed frame bytes, corrupting the stream (see the server
	// package's TestClientSharedConcurrent).
	wmu sync.Mutex
	fw  *wire.FrameWriter

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Msg
	sub     *Subscription
	err     error // terminal failure, set once by the read loop
	closed  bool
	// dropped counts pushed firings discarded because no subscription was
	// live to receive them (a push racing Subscribe's teardown or Close);
	// gap markers count for their Missed total.
	dropped int
	// gapFirings sums the gap markers delivered to this session's
	// subscription: firings the server dropped under the drop-with-gap
	// overflow policy.
	gapFirings int
	done       chan struct{}
	// closing aborts blocked subscription deliveries when the user calls
	// Close: a consumer that stopped draining must not wedge teardown.
	closing   chan struct{}
	closeOnce sync.Once
}

// Dial connects to an active-database server and performs the protocol
// handshake, negotiating the binary codec when the server speaks it.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions is Dial with explicit options. With Options.Retry set,
// failed dials and handshakes are retried under the policy's backoff;
// version mismatches fail immediately.
func DialOptions(addr string, opts Options) (*Client, error) {
	attempts := 1
	if opts.Retry != nil && opts.Retry.Attempts > 1 {
		attempts = opts.Retry.Attempts
	}
	var lastErr error
	for k := 0; k < attempts; k++ {
		if k > 0 {
			time.Sleep(opts.Retry.delay(k - 1))
		}
		conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		c, err := NewOptions(conn, opts)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if errors.Is(err, wire.ErrVersionMismatch) {
			return nil, err
		}
	}
	return nil, lastErr
}

// New runs the client protocol over an established connection (tests and
// custom transports dial themselves).
func New(conn net.Conn) (*Client, error) {
	return NewOptions(conn, Options{})
}

// NewOptions is New with explicit options.
func NewOptions(conn net.Conn, opts Options) (*Client, error) {
	codecs := opts.Codecs
	if codecs == nil {
		codecs = wire.DefaultCodecs()
	}
	hello := wire.Hello()
	hello.Codecs = codecs
	if err := wire.WriteFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 32<<10)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	m, err := wire.ReadFrame(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if m.T == wire.TypeError {
		conn.Close()
		return nil, remoteErr(m)
	}
	if err := wire.CheckHello(m); err != nil {
		conn.Close()
		return nil, err
	}
	// The codec the server chose must be one we offered; a legacy server
	// echoes nothing and the session stays on the JSON fallback.
	codec := wire.CodecJSON
	if m.Codec != "" {
		chosen, ok := wire.ParseCodec(m.Codec)
		offered := false
		for _, name := range codecs {
			if name == m.Codec {
				offered = true
			}
		}
		if !ok || !offered {
			conn.Close()
			return nil, fmt.Errorf("%w: server chose codec %q, offered %v",
				wire.ErrVersionMismatch, m.Codec, codecs)
		}
		codec = chosen
	}
	c := &Client{
		conn:    conn,
		codec:   codec,
		br:      br,
		fw:      wire.NewFrameWriter(conn, codec),
		pending: map[uint64]chan *wire.Msg{},
		done:    make(chan struct{}),
		closing: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Codec reports the frame codec this session negotiated ("json" or
// "binary").
func (c *Client) Codec() string { return c.codec.String() }

// readLoop routes every inbound frame: responses to their waiting caller
// by id, pushed firings/gaps/bye to the subscription. Subscription
// delivery blocks — that is deliberate: a slow consumer exerts TCP
// backpressure and the server's overflow policy, not the client, decides
// what to do about the lag.
func (c *Client) readLoop() {
	var cause error
	for {
		m, err := wire.ReadFrameC(c.br, c.codec)
		if err != nil {
			cause = err
			break
		}
		switch m.T {
		case wire.TypeFiring:
			// A firing push carries one firing (Firing) or a coalesced
			// batch (Firings) from a server doing batched delivery.
			sub := c.subscription()
			batch := m.Firings
			if m.Firing != nil {
				batch = append(batch, *m.Firing)
			}
			if sub == nil {
				c.notePushLoss(len(batch))
				break
			}
			for i := range batch {
				f, err := wire.DecodeFiring(batch[i])
				if err != nil {
					cause = err
					break
				}
				select {
				case sub.c <- StreamEvent{Firing: f, Seq: batch[i].Seq}:
				case <-c.closing:
					// Close was called with the stream undrained; discard.
				}
			}
		case wire.TypeGap:
			if sub := c.subscription(); sub != nil {
				c.mu.Lock()
				c.gapFirings += m.Missed
				c.mu.Unlock()
				select {
				case sub.c <- StreamEvent{Gap: m.Missed}:
				case <-c.closing:
				}
			} else {
				c.notePushLoss(m.Missed)
			}
		case wire.TypeBye:
			// Graceful drain: the server flushed everything it owed us.
			cause = wire.ErrSessionClosed
		default:
			c.mu.Lock()
			ch := c.pending[m.ID]
			delete(c.pending, m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		}
		if cause != nil {
			break
		}
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = cause
	}
	c.closed = true
	waiting := c.pending
	c.pending = map[uint64]chan *wire.Msg{}
	sub := c.sub
	c.sub = nil
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range waiting {
		close(ch)
	}
	if sub != nil {
		close(sub.c)
	}
	close(c.done)
}

func (c *Client) subscription() *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sub
}

// notePushLoss accounts firings the read loop had to discard because no
// subscription was live (the push raced Subscribe's error teardown or
// Close): the loss is observable through DroppedPushes instead of silent.
func (c *Client) notePushLoss(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.dropped += n
	c.mu.Unlock()
}

// DroppedPushes reports how many pushed firings (including firings
// summarized by gap markers) arrived with no live subscription to
// receive them and were discarded. A nonzero value means a subscriber
// observed a silently incomplete stream boundary — typically a push
// racing a failed Subscribe call or Close.
func (c *Client) DroppedPushes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Stats is a snapshot of the session's delivery counters.
type Stats struct {
	// Codec is the negotiated frame codec ("binary" or "json").
	Codec string
	// DroppedPushes counts pushed firings (including firings summarized
	// by gap markers) discarded because no subscription was live to
	// receive them — see DroppedPushes.
	DroppedPushes int
	// GapFirings counts firings the server reported dropped under the
	// drop-with-gap overflow policy: the sum of the gap markers this
	// session's subscription received. Nonzero means the subscriber fell
	// behind the firing rate and the stream has holes (each marked in
	// band by a StreamEvent with Gap set).
	GapFirings int
}

// Stats returns the session's delivery counters. A monitoring loop (or a
// shell's follow command) can check DroppedPushes and GapFirings after
// consuming a stream to tell a complete stream from one with losses.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Codec:         c.codec.String(),
		DroppedPushes: c.dropped,
		GapFirings:    c.gapFirings,
	}
}

// Close tears the session down. If the server is still up this is a
// client-initiated graceful drain: the server flushes what it owes (a
// subscription keeps delivering until its channel closes) and then closes
// the connection.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.closing) })
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.mu.Unlock()
	c.wmu.Lock()
	c.fw.Write(&wire.Msg{T: wire.TypeBye})
	c.wmu.Unlock()
	select {
	case <-c.done:
	case <-time.After(10 * time.Second):
		c.conn.Close()
		<-c.done
	}
	return nil
}

// Err reports why the session ended (nil while it is alive;
// ErrSessionClosed after a graceful close).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// start registers a pending id for m and writes the frame; the returned
// channel receives the response (or closes when the session dies).
func (c *Client) start(m *wire.Msg) (chan *wire.Msg, error) {
	ch := make(chan *wire.Msg, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = wire.ErrSessionClosed
		}
		return nil, err
	}
	c.nextID++
	id := c.nextID
	m.ID = id
	c.pending[id] = ch
	c.mu.Unlock()
	c.wmu.Lock()
	err := c.fw.Write(m)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// wait collects the response for a channel returned by start.
func (c *Client) wait(ch chan *wire.Msg) (*wire.Msg, error) {
	resp, ok := <-ch
	if !ok {
		if err := c.Err(); err != nil && !errors.Is(err, wire.ErrSessionClosed) {
			return nil, fmt.Errorf("%w (%v)", wire.ErrSessionClosed, err)
		}
		return nil, wire.ErrSessionClosed
	}
	if resp.T == wire.TypeError {
		return resp, remoteErr(resp)
	}
	return resp, nil
}

// call sends one request frame and waits for its response.
func (c *Client) call(m *wire.Msg) (*wire.Msg, error) {
	ch, err := c.start(m)
	if err != nil {
		return nil, err
	}
	return c.wait(ch)
}

// remoteErr reconstructs a server error frame as a client-side error.
// Constraint violations come back as *adb.ConstraintError (errors.As
// works); every other code is a *wire.RemoteError whose Unwrap maps onto
// the matching sentinel (errors.Is works).
func remoteErr(m *wire.Msg) error {
	if m.Code == wire.CodeConstraint && m.Name != "" {
		return &adb.ConstraintError{Constraint: m.Name, Txn: m.Txn}
	}
	if m.Code == wire.CodeNotPrimary {
		// The typed form carries the redirect hint, so a caller can
		// errors.As for *wire.NotPrimaryError and redial the leader.
		return &wire.NotPrimaryError{Leader: m.Leader}
	}
	return &wire.RemoteError{Code: m.Code, Msg: m.Err}
}

// Txn is a batched transaction: sets, deletes and events accumulated
// client-side and committed in one round trip (Commit), or pipelined
// (Go) so many transactions share the wire in flight.
type Txn struct {
	c       *Client
	ts      int64
	updates map[string]value.Value
	deletes []string
	events  []event.Event
	err     error
}

// Txn starts a batched transaction.
func (c *Client) Txn() *Txn {
	return &Txn{c: c, updates: map[string]value.Value{}}
}

// At pins the commit timestamp; without it the server assigns the next
// tick.
func (t *Txn) At(ts int64) *Txn { t.ts = ts; return t }

// Set records an item write.
func (t *Txn) Set(name string, v value.Value) *Txn { t.updates[name] = v; return t }

// Delete records an item removal.
func (t *Txn) Delete(name string) *Txn { t.deletes = append(t.deletes, name); return t }

// Emit records events to be part of the committed state.
func (t *Txn) Emit(events ...event.Event) *Txn { t.events = append(t.events, events...); return t }

// Pending is an in-flight pipelined request. Wait blocks until the
// response arrives and is idempotent; the transaction is applied by the
// server in send order regardless of when Wait is called.
type Pending struct {
	c    *Client
	ch   chan *wire.Msg
	once sync.Once
	ts   int64
	err  error
}

// Wait returns the timestamp the server applied the transaction at, or
// the error it failed with.
func (p *Pending) Wait() (int64, error) {
	p.once.Do(func() {
		if p.ch == nil {
			return // failed before the frame was sent; p.err is set
		}
		resp, err := p.c.wait(p.ch)
		if err != nil {
			p.err = err
			return
		}
		p.ts = resp.TS
	})
	return p.ts, p.err
}

// Go sends the transaction without waiting for its outcome: the commit
// is in flight and the server applies pipelined transactions in send
// order. Collect the result with Wait. Keeping a bounded number of
// Pendings in flight (a few dozen) amortizes the round trip across
// commits; see the E13 pipelined rows.
func (t *Txn) Go() *Pending {
	if t.err != nil {
		return &Pending{err: t.err}
	}
	updates, err := histio.EncodeItems(t.updates)
	if err != nil {
		return &Pending{err: err}
	}
	events, err := histio.EncodeEvents(t.events)
	if err != nil {
		return &Pending{err: err}
	}
	ch, err := t.c.start(&wire.Msg{
		T: wire.TypeTxn, TS: t.ts,
		Updates: updates, Deletes: t.deletes, Events: events,
	})
	if err != nil {
		return &Pending{err: err}
	}
	return &Pending{c: t.c, ch: ch}
}

// Commit sends the batch and returns the timestamp the server applied it
// at.
func (t *Txn) Commit() (int64, error) {
	return t.Go().Wait()
}

// Exec commits a one-shot transaction of item updates at ts (0 = server
// assigns) and returns the applied timestamp.
func (c *Client) Exec(ts int64, updates map[string]value.Value) (int64, error) {
	t := c.Txn().At(ts)
	for k, v := range updates {
		t.Set(k, v)
	}
	return t.Commit()
}

// Emit appends an event-only state at ts (0 = server assigns) and returns
// the applied timestamp.
func (c *Client) Emit(ts int64, events ...event.Event) (int64, error) {
	raw, err := histio.EncodeEvents(events)
	if err != nil {
		return 0, err
	}
	resp, err := c.call(&wire.Msg{T: wire.TypeEmit, TS: ts, Events: raw})
	if err != nil {
		return 0, err
	}
	return resp.TS, nil
}

// AddTrigger registers a trigger rule on the server; an optional
// scheduling mode overrides the default Eager evaluation. Server-side
// rules have no action body — firings are observed through subscriptions.
func (c *Client) AddTrigger(name, condition string, sched ...adb.Scheduling) error {
	return c.addRule(name, condition, false, sched)
}

// AddConstraint registers an integrity constraint; violating transactions
// fail with *adb.ConstraintError.
func (c *Client) AddConstraint(name, constraint string, sched ...adb.Scheduling) error {
	return c.addRule(name, constraint, true, sched)
}

func (c *Client) addRule(name, cond string, constraint bool, sched []adb.Scheduling) error {
	s := adb.Eager
	if len(sched) > 0 {
		s = sched[len(sched)-1]
	}
	_, err := c.call(&wire.Msg{
		T: wire.TypeRule, Name: name, Cond: cond,
		Constraint: constraint, Sched: int(s),
	})
	return err
}

// ReviveRule clears a quarantined rule's circuit breaker.
func (c *Client) ReviveRule(name string) error {
	_, err := c.call(&wire.Msg{T: wire.TypeRevive, Name: name})
	return err
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	_, err := c.call(&wire.Msg{T: wire.TypePing})
	return err
}

// Now returns the engine's current (latest) timestamp.
func (c *Client) Now() (int64, error) {
	resp, err := c.call(&wire.Msg{T: wire.TypeQuery, What: "now"})
	if err != nil {
		return 0, err
	}
	return resp.TS, nil
}

// DB returns the current database state as an item map.
func (c *Client) DB() (map[string]value.Value, error) {
	resp, err := c.call(&wire.Msg{T: wire.TypeQuery, What: "db"})
	if err != nil {
		return nil, err
	}
	return histio.DecodeItems(resp.Items)
}

// Firings returns the recorded rule firings starting at index from.
func (c *Client) Firings(from int) ([]adb.Firing, error) {
	resp, err := c.call(&wire.Msg{T: wire.TypeQuery, What: "firings", From: from})
	if err != nil {
		return nil, err
	}
	out := make([]adb.Firing, 0, len(resp.Firings))
	for _, fj := range resp.Firings {
		f, err := wire.DecodeFiring(fj)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// RuleInfo describes one registered rule as reported by the server.
type RuleInfo struct {
	Name       string
	Condition  string
	Constraint bool
	Scheduling adb.Scheduling
	Parameters []string
	Pending    int
}

// Rules lists the registered rules in registration order.
func (c *Client) Rules() ([]RuleInfo, error) {
	resp, err := c.call(&wire.Msg{T: wire.TypeQuery, What: "rules"})
	if err != nil {
		return nil, err
	}
	out := make([]RuleInfo, 0, len(resp.Rules))
	for _, r := range resp.Rules {
		out = append(out, RuleInfo{
			Name:       r.Name,
			Condition:  r.Condition,
			Constraint: r.Constraint,
			Scheduling: adb.Scheduling(r.Scheduling),
			Parameters: r.Parameters,
			Pending:    r.Pending,
		})
	}
	return out, nil
}

// Health is the server's health report: per-rule failure records plus the
// engine's degradation state.
type Health struct {
	Rules []wire.HealthJSON
	// Degraded is the engine's seal message ("" while healthy): writes
	// fail with ErrDegraded but reads and subscriptions stay alive.
	Degraded string
}

// Health queries rule health and engine degradation.
func (c *Client) Health() (Health, error) {
	resp, err := c.call(&wire.Msg{T: wire.TypeQuery, What: "health"})
	if err != nil {
		return Health{}, err
	}
	return Health{Rules: resp.Health, Degraded: resp.Degraded}, nil
}

// RoleStatus is the server's replication role report.
type RoleStatus struct {
	// Role is "primary", "follower", or "standalone".
	Role string
	// Leader is the primary's address hint ("" when unknown).
	Leader string
	// Epoch is the node's replication fencing epoch (0 = never promoted).
	Epoch int64
	// LSN is the node's last durable WAL position.
	LSN int64
}

// Role queries the server's replication role; a standalone server
// reports {Role: "standalone"}.
func (c *Client) Role() (RoleStatus, error) {
	resp, err := c.call(&wire.Msg{T: wire.TypeQuery, What: "role"})
	if err != nil {
		return RoleStatus{}, err
	}
	return RoleStatus{Role: resp.Role, Leader: resp.Leader, Epoch: resp.Epoch, LSN: resp.Lsn}, nil
}

// StorageStatus is the server's storage footprint report: the WAL and
// snapshot accounting plus the history-retention tiers.
type StorageStatus struct {
	// Segments is the number of live WAL segment files; WALBytes their
	// total size.
	Segments int
	WALBytes int64
	// Snapshots is the snapshot chain length; SnapshotBytes its total size.
	Snapshots     int
	SnapshotBytes int64
	// HeadLSN is the oldest retained WAL record; LastLSN the newest
	// durable one.
	HeadLSN int64
	LastLSN int64
	// HistoryWindow and HistoryFloor describe the retained temporal
	// history (0 when the server retains everything); SpillHistory reports
	// the tiered policy, with TierRows/TierBytes sizing the cold tier.
	HistoryWindow int64
	HistoryFloor  int64
	SpillHistory  bool
	TierRows      int64
	TierBytes     int64
}

// Storage queries the server's storage footprint; servers without a
// durable store (or routers over a mix) refuse with bad_request.
func (c *Client) Storage() (StorageStatus, error) {
	resp, err := c.call(&wire.Msg{T: wire.TypeQuery, What: "storage"})
	if err != nil {
		return StorageStatus{}, err
	}
	if resp.Storage == nil {
		return StorageStatus{}, fmt.Errorf("client: storage reply carried no stats")
	}
	st := resp.Storage
	return StorageStatus{
		Segments:      st.Segments,
		WALBytes:      st.WalBytes,
		Snapshots:     st.Snapshots,
		SnapshotBytes: st.SnapshotBytes,
		HeadLSN:       st.HeadLsn,
		LastLSN:       st.LastLsn,
		HistoryWindow: st.HistoryWindow,
		HistoryFloor:  st.HistoryFloor,
		SpillHistory:  st.SpillHistory,
		TierRows:      st.TierRows,
		TierBytes:     st.TierBytes,
	}, nil
}

// Subscribe opens the session's firing stream starting at absolute firing
// index from: the backlog is replayed, then live firings follow in engine
// order. One subscription per session.
func (c *Client) Subscribe(from int) (*Subscription, error) {
	sub := &Subscription{c: make(chan StreamEvent, 16)}
	sub.C = sub.c
	c.mu.Lock()
	if c.sub != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: already subscribed")
	}
	c.sub = sub
	c.mu.Unlock()
	if _, err := c.call(&wire.Msg{T: wire.TypeSubscribe, From: from}); err != nil {
		c.mu.Lock()
		if c.sub == sub {
			c.sub = nil
		}
		c.mu.Unlock()
		return nil, err
	}
	return sub, nil
}
