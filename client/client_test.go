package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"ptlactive/internal/server/wire"
)

// fakeServer drives the server side of a net.Pipe by hand: the tests
// below exercise handshake negotiation and push delivery without a real
// server, so each frame's codec and ordering is exactly what the test
// scripted.
type fakeServer struct {
	t    *testing.T
	conn net.Conn
}

// handshake consumes the client hello (always JSON) and replies,
// echoing pick as the chosen codec ("" plays a legacy server that
// ignores the offer). It returns the codec names the client offered.
func (s *fakeServer) handshake(pick string) []string {
	s.t.Helper()
	m, err := wire.ReadFrame(s.conn)
	if err != nil {
		s.t.Errorf("fake server: hello: %v", err)
		return nil
	}
	if m.T != wire.TypeHello || m.Proto != wire.ProtoName || m.Version != wire.Version {
		s.t.Errorf("fake server: bad hello %+v", m)
		return nil
	}
	reply := &wire.Msg{T: wire.TypeHello, ID: m.ID, Proto: wire.ProtoName, Version: wire.Version, Codec: pick}
	if err := wire.WriteFrame(s.conn, reply); err != nil {
		s.t.Errorf("fake server: hello reply: %v", err)
	}
	return m.Codecs
}

func (s *fakeServer) read(c wire.Codec) *wire.Msg {
	s.t.Helper()
	m, err := wire.ReadFrameC(s.conn, c)
	if err != nil {
		s.t.Errorf("fake server: read: %v", err)
		return &wire.Msg{}
	}
	return m
}

func (s *fakeServer) write(c wire.Codec, m *wire.Msg) {
	s.t.Helper()
	if err := wire.WriteFrameC(s.conn, m, c); err != nil {
		s.t.Errorf("fake server: write: %v", err)
	}
}

// pipeClient builds a Client against a scripted server. The script runs
// in its own goroutine (net.Pipe is synchronous); cleanup closes the
// server end first so Close never blocks on an unread bye frame.
func pipeClient(t *testing.T, opts Options, script func(s *fakeServer)) (*Client, error) {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		script(&fakeServer{t: t, conn: sc})
	}()
	c, err := NewOptions(cc, opts)
	t.Cleanup(func() {
		sc.Close()
		if c != nil {
			c.Close()
		}
		<-done
	})
	return c, err
}

// TestNegotiateBinary: the default offer leads the server to pick the
// binary codec, and the session's request/response frames switch to it
// while the hello exchange itself stayed JSON.
func TestNegotiateBinary(t *testing.T) {
	c, err := pipeClient(t, Options{}, func(s *fakeServer) {
		offered := s.handshake(wire.CodecNameBinary)
		found := false
		for _, name := range offered {
			if name == wire.CodecNameBinary {
				found = true
			}
		}
		if !found {
			s.t.Errorf("default offer %v does not include binary", offered)
		}
		// The next frame must arrive binary-encoded.
		m := s.read(wire.CodecBinary)
		if m.T != wire.TypePing {
			s.t.Errorf("expected binary ping, got %+v", m)
		}
		s.write(wire.CodecBinary, &wire.Msg{T: wire.TypeOK, ID: m.ID})
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Codec() != wire.CodecNameBinary {
		t.Fatalf("negotiated %q, want binary", c.Codec())
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("binary ping: %v", err)
	}
}

// TestNegotiateLegacyServer: a server that ignores the codec offer (no
// echo) leaves the session on the JSON fallback.
func TestNegotiateLegacyServer(t *testing.T) {
	c, err := pipeClient(t, Options{}, func(s *fakeServer) {
		s.handshake("")
		m := s.read(wire.CodecJSON)
		s.write(wire.CodecJSON, &wire.Msg{T: wire.TypeOK, ID: m.ID})
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Codec() != wire.CodecNameJSON {
		t.Fatalf("legacy session negotiated %q, want json", c.Codec())
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("json ping: %v", err)
	}
}

// TestNegotiateUnoffered: a server that picks a codec the client did not
// offer (or one the client cannot speak) fails the handshake rather than
// desynchronizing the stream.
func TestNegotiateUnoffered(t *testing.T) {
	for _, pick := range []string{wire.CodecNameBinary, "zstd-frames"} {
		_, err := pipeClient(t, Options{Codecs: []string{wire.CodecNameJSON}}, func(s *fakeServer) {
			s.handshake(pick)
		})
		if !errors.Is(err, wire.ErrVersionMismatch) {
			t.Fatalf("server pick %q: err = %v, want ErrVersionMismatch", pick, err)
		}
	}
}

// TestDroppedPushes: pushed firings and gap markers that arrive with no
// live subscription are not silently discarded — DroppedPushes counts
// them (including the firings a gap marker summarizes), so a consumer
// can detect the incomplete stream boundary.
func TestDroppedPushes(t *testing.T) {
	fj := wire.FiringJSON{Rule: "hot", Time: 1, Seq: 0}
	c, err := pipeClient(t, Options{Codecs: []string{wire.CodecNameJSON}}, func(s *fakeServer) {
		s.handshake(wire.CodecNameJSON)
		m := s.read(wire.CodecJSON) // ping
		// Unsolicited pushes before any subscription, then the pong: the
		// read loop handles frames in order, so once Ping returns the
		// losses are recorded.
		s.write(wire.CodecJSON, &wire.Msg{T: wire.TypeFiring, Firing: &fj})
		s.write(wire.CodecJSON, &wire.Msg{T: wire.TypeFiring, Firings: []wire.FiringJSON{fj, fj}})
		s.write(wire.CodecJSON, &wire.Msg{T: wire.TypeGap, Missed: 3})
		s.write(wire.CodecJSON, &wire.Msg{T: wire.TypeOK, ID: m.ID})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.DroppedPushes(); n != 0 {
		t.Fatalf("dropped = %d before any push", n)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if n := c.DroppedPushes(); n != 6 {
		t.Fatalf("dropped = %d, want 6 (1 + 2 batched + 3 in a gap)", n)
	}
}

// TestBatchedFiringDelivery: a multi-firing frame from a batching server
// unpacks into per-firing stream events with their own sequence numbers,
// indistinguishable from frame-per-firing delivery.
func TestBatchedFiringDelivery(t *testing.T) {
	mk := func(seq int) wire.FiringJSON {
		return wire.FiringJSON{Rule: "hot", Time: int64(seq + 1), Seq: seq}
	}
	c, err := pipeClient(t, Options{}, func(s *fakeServer) {
		s.handshake(wire.CodecNameBinary)
		m := s.read(wire.CodecBinary) // subscribe
		if m.T != wire.TypeSubscribe {
			s.t.Errorf("expected subscribe, got %+v", m)
			return
		}
		s.write(wire.CodecBinary, &wire.Msg{T: wire.TypeOK, ID: m.ID})
		s.write(wire.CodecBinary, &wire.Msg{T: wire.TypeFiring,
			Firings: []wire.FiringJSON{mk(0), mk(1), mk(2)}})
		s.write(wire.CodecBinary, &wire.Msg{T: wire.TypeFiring, Firing: &wire.FiringJSON{
			Rule: "hot", Time: 4, Seq: 3}})
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		select {
		case ev := <-sub.C:
			if ev.Gap != 0 || ev.Seq != i || ev.Firing.Rule != "hot" || ev.Firing.Time != int64(i+1) {
				t.Fatalf("event %d = %+v", i, ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stream stalled at event %d", i)
		}
	}
	if n := c.DroppedPushes(); n != 0 {
		t.Fatalf("dropped = %d with a live subscription", n)
	}
}
