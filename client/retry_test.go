package client

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ptlactive/internal/server/wire"
)

// flakyListener accepts on a loopback listener, slams the door on the
// first fail connections, and completes the hello handshake from then on.
func flakyListener(t *testing.T, fail int, helloReply func() *wire.Msg) (addr string, accepts *int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var n int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			k := atomic.AddInt32(&n, 1)
			if int(k) <= fail {
				conn.Close()
				continue
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := wire.ReadFrame(br); err != nil {
					return
				}
				if err := wire.WriteFrame(conn, helloReply()); err != nil {
					return
				}
				// Drain the session until the client says bye.
				for {
					m, err := wire.ReadFrame(br)
					if err != nil || m.T == wire.TypeBye {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), &n
}

// TestDialRetryEventuallyConnects: the first connections die before the
// handshake; the retry policy rides them out and lands on the healthy one.
func TestDialRetryEventuallyConnects(t *testing.T) {
	addr, accepts := flakyListener(t, 2, wire.Hello)
	c, err := DialOptions(addr, Options{Retry: &RetryPolicy{
		Attempts: 6, Base: time.Millisecond, Max: 4 * time.Millisecond,
	}})
	if err != nil {
		t.Fatalf("dial with retry: %v", err)
	}
	c.Close()
	if got := atomic.LoadInt32(accepts); got != 3 {
		t.Fatalf("server accepted %d connections, want 3 (2 failures + 1 success)", got)
	}
}

// TestDialRetrySingleAttemptWithoutPolicy preserves the historical
// contract: no Retry, one attempt.
func TestDialRetrySingleAttemptWithoutPolicy(t *testing.T) {
	addr, accepts := flakyListener(t, 1, wire.Hello)
	if _, err := DialOptions(addr, Options{}); err == nil {
		t.Fatal("dial succeeded through a dead handshake")
	}
	if got := atomic.LoadInt32(accepts); got != 1 {
		t.Fatalf("server accepted %d connections, want 1", got)
	}
}

// TestDialRetryVersionMismatchFailsFast: waiting will not fix a protocol
// disagreement, so the policy must not burn attempts on it.
func TestDialRetryVersionMismatchFailsFast(t *testing.T) {
	addr, accepts := flakyListener(t, 0, func() *wire.Msg {
		m := wire.Hello()
		m.Version = m.Version + 1
		return m
	})
	_, err := DialOptions(addr, Options{Retry: &RetryPolicy{
		Attempts: 5, Base: time.Millisecond, Max: 2 * time.Millisecond,
	}})
	if !errors.Is(err, wire.ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	if got := atomic.LoadInt32(accepts); got != 1 {
		t.Fatalf("server accepted %d connections, want 1 (no retry on mismatch)", got)
	}
}

// TestRetryDelayBounds pins the backoff shape: attempt k sleeps at least
// half the doubled base, never more than Max, jitter within the step.
func TestRetryDelayBounds(t *testing.T) {
	p := &RetryPolicy{Attempts: 10, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for k := 0; k < 10; k++ {
		step := p.Base << k
		if step > p.Max || step <= 0 {
			step = p.Max
		}
		for trial := 0; trial < 50; trial++ {
			d := p.delay(k)
			if d < step/2 || d > step {
				t.Fatalf("delay(%d) = %v outside [%v, %v]", k, d, step/2, step)
			}
		}
	}
	// Defaults kick in for zero fields, and huge k does not overflow.
	var z RetryPolicy
	if d := z.delay(40); d <= 0 || d > 3*time.Second {
		t.Fatalf("zero-policy delay(40) = %v", d)
	}
}
